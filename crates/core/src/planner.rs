//! A model-driven join planner — the use case the paper names for its
//! quantitative model: "a quantitative model is an essential tool for
//! subsystems such as a query optimizer" (§1).
//!
//! Given the machine's measured parameters and a join's shape, the
//! planner evaluates all three analytical cost functions and picks the
//! cheapest algorithm, returning the full prediction table so callers
//! can audit the decision.

use mmjoin_env::machine::MachineParams;
use mmjoin_env::{CpuOp, MoveKind};
use mmjoin_model::breakdown::CostKind;
use mmjoin_model::{choose_k, predict, Algorithm, CostBreakdown, JoinInputs, HASH_ENTRY_OVERHEAD};
use mmjoin_relstore::{Relations, SPTR_SIZE};

use crate::exec::{ExecMode, JoinSpec};
use crate::modern;
use crate::stats::SampleSummary;

/// Build the model inputs corresponding to an executable join.
///
/// Mode-aware: the modern kernels exchange [`modern::PROBE_BATCH`]
/// 16-byte `(key, ptr)` records per `Sproc` round trip instead of
/// filling the faithful `G` buffer with whole R-objects, so the
/// *effective* exchange buffer under [`ExecMode::Modern`] is
/// `PROBE_BATCH × (req + s)` — that is what the model's per-batch
/// context-switch amortization must see. (The kernels' constant-factor
/// CPU gains are not modelled; `mmjoin validate-model` prints the
/// resulting measured-vs-predicted gap per algorithm.)
pub fn inputs_for(rels: &Relations, spec: &JoinSpec) -> JoinInputs {
    let g_buffer = if spec.mode == ExecMode::Modern {
        modern::PROBE_BATCH as u64 * (modern::PROBE_REQ_BYTES + rels.rel.s_size as u64)
    } else {
        spec.g_buffer
    };
    JoinInputs {
        r_objects: rels.rel.r_objects,
        s_objects: rels.rel.s_objects,
        r_size: rels.rel.r_size,
        s_size: rels.rel.s_size,
        sptr_size: SPTR_SIZE,
        d: rels.rel.d,
        skew: rels.skew,
        m_rproc: spec.m_rproc,
        m_sproc: spec.m_sproc,
        g_buffer,
    }
}

/// One planner decision.
#[derive(Clone, Debug)]
pub struct PlanChoice {
    /// The predicted-cheapest algorithm.
    pub algorithm: Algorithm,
    /// Every algorithm's predicted elapsed seconds, cheapest first.
    pub ranking: Vec<(Algorithm, f64)>,
}

impl PlanChoice {
    /// The winner's predicted time.
    pub fn predicted_seconds(&self) -> f64 {
        self.ranking[0].1
    }
}

/// Evaluate the model for every algorithm and rank them.
///
/// ```
/// use mmjoin::choose;
/// use mmjoin_env::machine::MachineParams;
/// use mmjoin_model::JoinInputs;
/// let inputs = JoinInputs {
///     r_objects: 102_400, s_objects: 102_400, r_size: 128, s_size: 128,
///     sptr_size: 8, d: 4, skew: 1.0,
///     m_rproc: 64 * 4096, m_sproc: 64 * 4096, g_buffer: 4096,
/// };
/// let plan = choose(&MachineParams::waterloo96(), &inputs);
/// // At 2% of |R| the hash joins win, nested loops loses.
/// assert_ne!(plan.algorithm, mmjoin_model::Algorithm::NestedLoops);
/// assert_eq!(plan.ranking.len(), mmjoin_model::Algorithm::ALL.len());
/// ```
pub fn choose(machine: &MachineParams, inputs: &JoinInputs) -> PlanChoice {
    let mut ranking: Vec<(Algorithm, f64)> = Algorithm::ALL
        .iter()
        .map(|&alg| (alg, predict(alg, machine, inputs).total()))
        .collect();
    ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
    PlanChoice {
        algorithm: ranking[0].0,
        ranking,
    }
}

/// Full prediction (itemized) for one algorithm at these inputs.
pub fn explain(machine: &MachineParams, inputs: &JoinInputs, alg: Algorithm) -> CostBreakdown {
    predict(alg, machine, inputs)
}

/// Predicted cost of probing `batch_rows` R-rows against an *already
/// resident* S: the steady-state unit of the streaming tier.
///
/// A resident-S probe batch pays none of the one-shot join's setup —
/// no `newMap`/`openMap`, no pass-0 scatter of `RP_{i,j}` areas, and
/// no S partitioning (the resident index was built once and is
/// amortized over the stream). What remains, per the §5.3 vocabulary:
///
/// * hash/map the batch's join attributes (`CpuOp::Map` + `Hash`);
/// * exchange fetch requests with the Sprocs through the shared
///   buffer (`2·CS` per G-buffer batch, §5.2);
/// * move `sptr + s` bytes per row private↔shared (`MT_PS`);
/// * fault in whatever slice of S the resident buffer does not hold.
///   The stream paid Mackert–Lohman's warm-up term `t(1 − qˣ)` once,
///   at open; what a steady-state batch pays is the *marginal* term,
///   whose per-access miss probability is `qⁿ = 1 − b/t` (the buffer
///   holds `b` of S's `t` pages). Applied to the *worst* per-partition
///   share, `skew · rows / D`, priced at `dttr(P_Si)`.
///
/// The admission controller prices every `batch=` line with this
/// instead of the full-join model, so SPJF ordering and `pred`
/// placement keep working on streams.
pub fn probe_cost(machine: &MachineParams, base: &JoinInputs, batch_rows: u64) -> CostBreakdown {
    let b = machine.page_size;
    let d = base.d as f64;
    let rows = batch_rows as f64;
    // Worst per-partition share of the batch, skew-adjusted like the
    // one-shot model's R_(i,i) term but never more than the batch.
    let worst = (rows / d * base.skew.max(1.0)).min(rows);
    let p_si = base.p_si(b);
    let msproc_pages = (base.m_sproc / b) as f64;

    let mut out = CostBreakdown::default();
    out.push(
        "probe",
        CostKind::Cpu,
        format!("map + hash {rows:.0} batch join attributes"),
        rows * (machine.op(CpuOp::Map) + machine.op(CpuOp::Hash)),
    );
    out.push(
        "probe",
        CostKind::Ctx,
        format!("G-buffer exchanges for worst partition share {worst:.0}"),
        base.ctx_switches_for(worst) * machine.cs,
    );
    out.push(
        "probe",
        CostKind::Move,
        format!("move {rows:.0} × (sptr+s) via shared buffer"),
        rows * (base.sptr_size as u64 + base.s_size as u64) as f64 * machine.mt(MoveKind::PS),
    );
    let miss = (1.0 - msproc_pages / p_si.max(1.0)).clamp(0.0, 1.0);
    let faults = worst * miss;
    out.push(
        "probe",
        CostKind::DiskRead,
        format!("fault resident S via Ylru: {faults:.0} faults @ dttr({p_si:.0})"),
        faults * machine.dttr.eval(p_si),
    );
    out.push(
        "probe",
        CostKind::Cpu,
        "page-fault overhead",
        faults * machine.op(CpuOp::FaultOverhead),
    );
    out
}

/// Where the skew factor a plan was priced with came from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SkewSource {
    /// The paper's uniform assumption (skew 1.0), no statistics at all.
    Assumed,
    /// The workload's distribution-level analytical estimate
    /// (`WorkloadSpec::estimated_skew`), still a closed-form bound.
    Estimated,
    /// A histogram over actually sampled pointers
    /// ([`SampleSummary::estimated_skew`]).
    Sampled,
}

impl SkewSource {
    /// Stable lowercase name for traces and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            SkewSource::Assumed => "assumed",
            SkewSource::Estimated => "estimated",
            SkewSource::Sampled => "sampled",
        }
    }
}

/// A data-aware plan: algorithm, memory grant, and partition count
/// chosen from observed (or estimated) statistics rather than a fixed
/// configuration, with the provenance of the skew term it was priced
/// with.
#[derive(Clone, Debug)]
pub struct AutoPlan {
    /// The ranked algorithm decision at the chosen memory grant.
    pub choice: PlanChoice,
    /// The chosen `M_Rproc_i` in bytes — never predicted slower than
    /// the requested grant, and trimmed when the model says the extra
    /// memory buys nothing.
    pub m_rproc: u64,
    /// The chosen `M_Sproc_i` in bytes (currently the requested grant;
    /// shrinking it always costs hybrid hash its resident bucket 0).
    pub m_sproc: u64,
    /// The skew factor the plan was priced with.
    pub skew: f64,
    /// Plan-level partition count for the local join pass
    /// (`choose_k` over the skew-adjusted worst `RS_i`).
    pub partitions: u32,
    /// Where [`AutoPlan::skew`] came from.
    pub source: SkewSource,
}

impl AutoPlan {
    /// The winner's predicted time at the chosen memory grant.
    pub fn predicted_seconds(&self) -> f64 {
        self.choice.predicted_seconds()
    }

    /// One-line provenance for logs: algorithm, grant, partitions,
    /// skew and its source.
    pub fn describe(&self) -> String {
        format!(
            "{} m_rproc={} KiB K={} skew={:.2} ({})",
            self.choice.algorithm.name(),
            self.m_rproc / 1024,
            self.partitions,
            self.skew,
            self.source.name()
        )
    }
}

/// Page size used to align chosen memory grants.
const PLAN_PAGE: u64 = 4096;

/// Smallest memory grant the auto-planner will choose.
const PLAN_MIN_BYTES: u64 = 4 * PLAN_PAGE;

/// Relative tolerance under which a smaller memory grant counts as
/// "predicted no slower": only genuinely flat regions of the cost
/// curve let the grant shrink.
const PLAN_FLAT_EPS: f64 = 1e-9;

/// The skew-adjusted worst per-process `RS_i` population.
fn rs_worst(inputs: &JoinInputs, skew: f64) -> u64 {
    let ri = inputs.r_objects / inputs.d as u64;
    ((ri as f64 * skew).min(inputs.r_objects as f64)).ceil() as u64
}

/// A memory grant beyond which the model's curves are flat: the
/// resident partition plus a `choose_k`-slack hash table over the
/// skew-adjusted worst `RS_i`.
fn useful_cap(inputs: &JoinInputs, skew: f64) -> u64 {
    let ri = inputs.r_objects / inputs.d as u64;
    let rs = rs_worst(inputs, skew);
    let bytes = ri * inputs.r_size as u64 + rs * (inputs.r_size as u64 + HASH_ENTRY_OVERHEAD) * 3;
    bytes.next_multiple_of(PLAN_PAGE).max(PLAN_MIN_BYTES)
}

/// Choose algorithm, memory grant, and partition count from statistics.
///
/// The skew term comes from `summary` when one is given (a histogram
/// over sampled pointers), else from `base.skew` (the workload's
/// analytical estimate), else it is the uniform assumption. The memory
/// grant starts from `base.m_rproc` and is reduced to the smallest
/// page-aligned candidate whose best predicted time is within
/// `PLAN_FLAT_EPS` of the best overall — so the plan is never
/// *predicted* slower than the fixed plan, and uniform inputs hand
/// budget back to the admission controller while skewed inputs keep
/// their grant.
///
/// A sampled summary additionally replaces `|S|` with its Chao1
/// hot-set estimate ([`SampleSummary::estimated_distinct`]): heavily
/// duplicated pointers mean the join only ever touches a small slice
/// of S, and pricing against that slice is what lets the planner flip
/// to pointer chasing on hot-key workloads.
pub fn choose_auto(
    machine: &MachineParams,
    base: &JoinInputs,
    summary: Option<&SampleSummary>,
) -> AutoPlan {
    let (skew, source) = match summary {
        Some(s) => (s.estimated_skew(), SkewSource::Sampled),
        None if (base.skew - 1.0).abs() > 1e-12 => (base.skew, SkewSource::Estimated),
        None => (1.0, SkewSource::Assumed),
    };
    let mut inputs = *base;
    inputs.skew = skew;
    if let Some(s) = summary {
        // Duplicated pointers shrink the S working set: price every
        // algorithm against the Chao1-estimated hot set rather than the
        // full target space. A hot set that fits in memory makes
        // repeated pointer fetches cache hits, which is exactly the
        // regime where pointer chasing beats the partitioning joins.
        inputs.s_objects = inputs.s_objects.min(s.estimated_distinct().max(1));
    }

    let cap = useful_cap(&inputs, skew)
        .min(base.m_rproc)
        .max(PLAN_MIN_BYTES);
    let mut candidates = vec![base.m_rproc, cap, cap / 2, cap / 4];
    for c in &mut candidates {
        *c = (*c / PLAN_PAGE * PLAN_PAGE).max(PLAN_MIN_BYTES);
    }
    candidates.sort_unstable();
    candidates.dedup();

    let predicted: Vec<(u64, f64)> = candidates
        .iter()
        .map(|&m| {
            let mut w = inputs;
            w.m_rproc = m;
            (m, choose(machine, &w).predicted_seconds())
        })
        .collect();
    let best = predicted
        .iter()
        .map(|&(_, t)| t)
        .fold(f64::INFINITY, f64::min);
    let m_rproc = predicted
        .iter()
        .find(|&&(_, t)| t <= best * (1.0 + PLAN_FLAT_EPS))
        .map(|&(m, _)| m)
        .unwrap_or(base.m_rproc);

    inputs.m_rproc = m_rproc;
    let choice = choose(machine, &inputs);
    let partitions = choose_k(rs_worst(&inputs, skew), inputs.r_size, m_rproc).max(1) as u32;
    AutoPlan {
        choice,
        m_rproc,
        m_sproc: base.m_sproc,
        skew,
        partitions,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(m_frac: f64) -> JoinInputs {
        let r_bytes = 102_400u64 * 128;
        JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: (m_frac * r_bytes as f64) as u64,
            m_sproc: (m_frac * r_bytes as f64) as u64,
            g_buffer: 4096,
        }
    }

    #[test]
    fn planner_prefers_hash_joins_at_small_memory() {
        // Fig. 5's regimes: at a few percent of |R|, the hash joins beat
        // sort-merge, which beats nested loops — and hybrid hash's
        // memory-resident bucket 0 beats plain Grace.
        let m = MachineParams::waterloo96();
        let c = choose(&m, &inputs(0.04));
        assert_eq!(c.algorithm, Algorithm::HybridHash);
        assert_eq!(c.ranking.len(), Algorithm::ALL.len());
        for pair in c.ranking.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "ranking sorted ascending");
        }
        let pos = |a: Algorithm| c.ranking.iter().position(|&(x, _)| x == a).unwrap();
        assert!(pos(Algorithm::Grace) < pos(Algorithm::SortMerge));
        assert!(pos(Algorithm::SortMerge) < pos(Algorithm::NestedLoops));
    }

    #[test]
    fn ranking_is_complete_and_positive() {
        let m = MachineParams::waterloo96();
        let c = choose(&m, &inputs(0.3));
        let names: std::collections::HashSet<_> = c.ranking.iter().map(|(a, _)| a.name()).collect();
        assert_eq!(names.len(), Algorithm::ALL.len());
        for (_, t) in &c.ranking {
            assert!(*t > 0.0);
        }
        assert_eq!(c.predicted_seconds(), c.ranking[0].1);
    }

    #[test]
    fn auto_plan_differs_between_uniform_and_skewed_samples() {
        let m = MachineParams::waterloo96();
        let base = inputs(0.05);
        // Uniform sample: every partition equally hit from every source.
        let uni: Vec<(u32, u64)> = (0..4096u64)
            .map(|k| ((k % 4) as u32, (k * 97) % base.s_objects))
            .collect();
        let uni_sum = SampleSummary::from_pointers(&uni, base.r_objects, base.s_objects, 4, 16);
        // Cross-partition-like sample: every source hits one partition.
        let per = base.s_objects / 4;
        let skewed: Vec<(u32, u64)> = (0..4096u64)
            .map(|k| ((k % 4) as u32, per + k % per))
            .collect();
        let skew_sum = SampleSummary::from_pointers(&skewed, base.r_objects, base.s_objects, 4, 16);

        let a = choose_auto(&m, &base, Some(&uni_sum));
        let b = choose_auto(&m, &base, Some(&skew_sum));
        assert_eq!(a.source, SkewSource::Sampled);
        assert!(a.skew < 1.2, "uniform sampled skew {}", a.skew);
        assert_eq!(b.skew, 4.0, "concentrated sample saturates the factor");
        // The skewed plan must differ: the skew-adjusted worst RS_i is
        // ~4x larger, so the plan-level partition count grows (and the
        // algorithm may flip too).
        assert!(
            b.partitions > a.partitions || b.choice.algorithm != a.choice.algorithm,
            "skewed plan {:?}/{} == uniform plan {:?}/{}",
            b.choice.algorithm,
            b.partitions,
            a.choice.algorithm,
            a.partitions
        );
        assert!(b.m_rproc >= a.m_rproc, "skew never shrinks the grant more");
    }

    #[test]
    fn hot_key_sample_flips_the_plan_to_pointer_chasing() {
        let m = MachineParams::waterloo96();
        let base = inputs(0.02);
        // Fixed statistics at 2% of |R|: a partitioning join wins.
        let fixed = choose(&m, &base);
        assert_ne!(fixed.algorithm, Algorithm::NestedLoops);
        // A closed hot set of 64 targets, evenly hit from every source:
        // skew stays ~1 but the Chao1 estimate collapses |S| to 64, the
        // repeated fetches become cache hits, and pointer chasing wins.
        let hot: Vec<(u32, u64)> = (0..4096u64)
            .map(|k| ((k % 4) as u32, (k * 13) % 64))
            .collect();
        let sum = SampleSummary::from_pointers(&hot, base.r_objects, base.s_objects, 4, 16);
        assert_eq!(sum.estimated_distinct(), 64);
        let auto = choose_auto(&m, &base, Some(&sum));
        assert_eq!(
            auto.choice.algorithm,
            Algorithm::NestedLoops,
            "hot set must flip the pick: {:?}",
            auto.choice.ranking
        );
    }

    #[test]
    fn auto_plan_is_never_predicted_slower_than_fixed() {
        let m = MachineParams::waterloo96();
        for frac in [0.02, 0.05, 0.1, 0.3] {
            for skew in [1.0, 2.0, 4.0] {
                let mut base = inputs(frac);
                base.skew = skew;
                let fixed = choose(&m, &base);
                let auto = choose_auto(&m, &base, None);
                assert!(
                    auto.predicted_seconds() <= fixed.predicted_seconds() * (1.0 + 1e-6),
                    "auto {} > fixed {} at frac {frac} skew {skew}",
                    auto.predicted_seconds(),
                    fixed.predicted_seconds()
                );
                assert!(auto.m_rproc <= base.m_rproc);
                assert!(auto.m_rproc >= 4 * 4096);
            }
        }
    }

    #[test]
    fn auto_plan_trims_grants_the_model_calls_useless() {
        let m = MachineParams::waterloo96();
        // Request far more memory than the whole working set: the
        // auto-planner must hand the surplus back.
        let mut base = inputs(0.05);
        base.m_rproc = 8 * base.r_objects * base.r_size as u64;
        let auto = choose_auto(&m, &base, None);
        assert!(
            auto.m_rproc < base.m_rproc,
            "grant {} not trimmed from {}",
            auto.m_rproc,
            base.m_rproc
        );
        assert_eq!(auto.m_rproc % 4096, 0, "grant is page aligned");
    }

    #[test]
    fn auto_plan_is_deterministic() {
        let m = MachineParams::waterloo96();
        let base = inputs(0.05);
        let ptrs: Vec<(u32, u64)> = (0..2048u64)
            .map(|k| ((k % 4) as u32, (k * 31) % base.s_objects))
            .collect();
        let sum = SampleSummary::from_pointers(&ptrs, base.r_objects, base.s_objects, 4, 16);
        let a = choose_auto(&m, &base, Some(&sum));
        let b = choose_auto(&m, &base, Some(&sum));
        assert_eq!(a.choice.algorithm, b.choice.algorithm);
        assert_eq!(a.m_rproc, b.m_rproc);
        assert_eq!(a.partitions, b.partitions);
        assert_eq!(a.skew.to_bits(), b.skew.to_bits());
        assert!(a.describe().contains("sampled"));
    }

    #[test]
    fn probe_cost_is_far_below_a_full_join_of_the_same_rows() {
        // The streaming claim: once S is resident, a batch costs a
        // small multiple of its fetch I/O, not a full join's setup +
        // pass-0 + partitioning. Require a wide margin (the acceptance
        // bar is 3×; the model should show much more).
        let m = MachineParams::waterloo96();
        for batch in [256u64, 2048, 16_384] {
            // The streaming regime: the resident budget holds S, so
            // steady-state probes fault nothing while each independent
            // full join still re-pays setup and its own warm-up.
            let mut w = inputs(0.05);
            w.r_objects = batch;
            w.m_sproc = w.s_objects * w.s_size as u64;
            let full = choose(&m, &w).predicted_seconds();
            let probe = probe_cost(&m, &w, batch).total();
            assert!(
                probe * 3.0 < full,
                "batch {batch}: probe {probe:.4}s not 3x below full {full:.4}s"
            );
        }
        // Even at 5% residency a probe undercuts the full join (no
        // setup, no scatter), just not by the steady-state margin.
        let mut w = inputs(0.05);
        w.r_objects = 2048;
        let full = choose(&m, &w).predicted_seconds();
        let probe = probe_cost(&m, &w, 2048).total();
        assert!(probe < full, "probe {probe:.4}s vs full {full:.4}s");
    }

    #[test]
    fn probe_cost_scales_with_rows_and_skew() {
        let m = MachineParams::waterloo96();
        let w = inputs(0.05);
        let small = probe_cost(&m, &w, 512).total();
        let big = probe_cost(&m, &w, 8192).total();
        assert!(big > small, "more rows must cost more: {small} vs {big}");
        let mut skewed = w;
        skewed.skew = 4.0;
        assert!(
            probe_cost(&m, &skewed, 8192).total() >= big,
            "skew concentrates the worst partition share"
        );
        // No setup or write terms: probes never create areas.
        let b = probe_cost(&m, &w, 2048);
        assert_eq!(b.total_kind(CostKind::Setup), 0.0);
        assert_eq!(b.total_kind(CostKind::DiskWrite), 0.0);
        assert_eq!(b.passes(), vec!["probe"]);
    }

    #[test]
    fn explain_matches_predict() {
        let m = MachineParams::waterloo96();
        let w = inputs(0.05);
        let b = explain(&m, &w, Algorithm::SortMerge);
        assert!((b.total() - predict(Algorithm::SortMerge, &m, &w).total()).abs() < 1e-12);
    }
}
