//! A model-driven join planner — the use case the paper names for its
//! quantitative model: "a quantitative model is an essential tool for
//! subsystems such as a query optimizer" (§1).
//!
//! Given the machine's measured parameters and a join's shape, the
//! planner evaluates all three analytical cost functions and picks the
//! cheapest algorithm, returning the full prediction table so callers
//! can audit the decision.

use mmjoin_env::machine::MachineParams;
use mmjoin_model::{predict, Algorithm, CostBreakdown, JoinInputs};
use mmjoin_relstore::{Relations, SPTR_SIZE};

use crate::exec::{ExecMode, JoinSpec};
use crate::modern;

/// Build the model inputs corresponding to an executable join.
///
/// Mode-aware: the modern kernels exchange [`modern::PROBE_BATCH`]
/// 16-byte `(key, ptr)` records per `Sproc` round trip instead of
/// filling the faithful `G` buffer with whole R-objects, so the
/// *effective* exchange buffer under [`ExecMode::Modern`] is
/// `PROBE_BATCH × (req + s)` — that is what the model's per-batch
/// context-switch amortization must see. (The kernels' constant-factor
/// CPU gains are not modelled; `mmjoin validate-model` prints the
/// resulting measured-vs-predicted gap per algorithm.)
pub fn inputs_for(rels: &Relations, spec: &JoinSpec) -> JoinInputs {
    let g_buffer = if spec.mode == ExecMode::Modern {
        modern::PROBE_BATCH as u64 * (modern::PROBE_REQ_BYTES + rels.rel.s_size as u64)
    } else {
        spec.g_buffer
    };
    JoinInputs {
        r_objects: rels.rel.r_objects,
        s_objects: rels.rel.s_objects,
        r_size: rels.rel.r_size,
        s_size: rels.rel.s_size,
        sptr_size: SPTR_SIZE,
        d: rels.rel.d,
        skew: rels.skew,
        m_rproc: spec.m_rproc,
        m_sproc: spec.m_sproc,
        g_buffer,
    }
}

/// One planner decision.
#[derive(Clone, Debug)]
pub struct PlanChoice {
    /// The predicted-cheapest algorithm.
    pub algorithm: Algorithm,
    /// Every algorithm's predicted elapsed seconds, cheapest first.
    pub ranking: Vec<(Algorithm, f64)>,
}

impl PlanChoice {
    /// The winner's predicted time.
    pub fn predicted_seconds(&self) -> f64 {
        self.ranking[0].1
    }
}

/// Evaluate the model for every algorithm and rank them.
///
/// ```
/// use mmjoin::choose;
/// use mmjoin_env::machine::MachineParams;
/// use mmjoin_model::JoinInputs;
/// let inputs = JoinInputs {
///     r_objects: 102_400, s_objects: 102_400, r_size: 128, s_size: 128,
///     sptr_size: 8, d: 4, skew: 1.0,
///     m_rproc: 64 * 4096, m_sproc: 64 * 4096, g_buffer: 4096,
/// };
/// let plan = choose(&MachineParams::waterloo96(), &inputs);
/// // At 2% of |R| the hash joins win, nested loops loses.
/// assert_ne!(plan.algorithm, mmjoin_model::Algorithm::NestedLoops);
/// assert_eq!(plan.ranking.len(), mmjoin_model::Algorithm::ALL.len());
/// ```
pub fn choose(machine: &MachineParams, inputs: &JoinInputs) -> PlanChoice {
    let mut ranking: Vec<(Algorithm, f64)> = Algorithm::ALL
        .iter()
        .map(|&alg| (alg, predict(alg, machine, inputs).total()))
        .collect();
    ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
    PlanChoice {
        algorithm: ranking[0].0,
        ranking,
    }
}

/// Full prediction (itemized) for one algorithm at these inputs.
pub fn explain(machine: &MachineParams, inputs: &JoinInputs, alg: Algorithm) -> CostBreakdown {
    predict(alg, machine, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(m_frac: f64) -> JoinInputs {
        let r_bytes = 102_400u64 * 128;
        JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: (m_frac * r_bytes as f64) as u64,
            m_sproc: (m_frac * r_bytes as f64) as u64,
            g_buffer: 4096,
        }
    }

    #[test]
    fn planner_prefers_hash_joins_at_small_memory() {
        // Fig. 5's regimes: at a few percent of |R|, the hash joins beat
        // sort-merge, which beats nested loops — and hybrid hash's
        // memory-resident bucket 0 beats plain Grace.
        let m = MachineParams::waterloo96();
        let c = choose(&m, &inputs(0.04));
        assert_eq!(c.algorithm, Algorithm::HybridHash);
        assert_eq!(c.ranking.len(), Algorithm::ALL.len());
        for pair in c.ranking.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "ranking sorted ascending");
        }
        let pos = |a: Algorithm| c.ranking.iter().position(|&(x, _)| x == a).unwrap();
        assert!(pos(Algorithm::Grace) < pos(Algorithm::SortMerge));
        assert!(pos(Algorithm::SortMerge) < pos(Algorithm::NestedLoops));
    }

    #[test]
    fn ranking_is_complete_and_positive() {
        let m = MachineParams::waterloo96();
        let c = choose(&m, &inputs(0.3));
        let names: std::collections::HashSet<_> = c.ranking.iter().map(|(a, _)| a.name()).collect();
        assert_eq!(names.len(), Algorithm::ALL.len());
        for (_, t) in &c.ranking {
            assert!(*t > 0.0);
        }
        assert_eq!(c.predicted_seconds(), c.ranking[0].1);
    }

    #[test]
    fn explain_matches_predict() {
        let m = MachineParams::waterloo96();
        let w = inputs(0.05);
        let b = explain(&m, &w, Algorithm::SortMerge);
        assert!((b.total() - predict(Algorithm::SortMerge, &m, &w).total()).abs() < 1e-12);
    }
}
