//! Parallel pointer-based **hybrid-hash** join — the paper's named
//! future work (§7: "Modelling of other more modern hash-based join
//! algorithms will be done in future work"), built from Shekita &
//! Carey's single-site hybrid hash \[33\] the way the paper built its
//! Grace variant.
//!
//! Hybrid hash improves Grace by holding the first bucket *in memory*:
//! objects hashing into bucket 0 never take the disk round-trip through
//! `RS`. In the pointer-based setting the "in-memory bucket" is a
//! *range of `S`*: bucket 0 covers the first `f₀` fraction of each `S`
//! partition — sized so that range fits comfortably in the owning
//! `Sproc`'s buffer — and R-objects pointing into it are joined
//! immediately through the shared buffer during passes 0 and 1, while
//! their page of `S` stays hot. Only the remaining `K` buckets are
//! written to `RS_i` and joined bucket-by-bucket as in Grace.
//!
//! The phase staggering keeps the immediate joins contention-free: in
//! any phase, `S_j` (bucket-0 range included) is touched by exactly one
//! Rproc.

use mmjoin_env::{CpuOp, DiskId, Env, EnvError, MoveKind, ProcId, Result, SPtr, TraceEvent};
use mmjoin_model::{choose_k, choose_tsize};
use mmjoin_relstore::{chunked_capacity, names, r_key, r_sptr, ChunkedFile, ObjScan, Relations};

use crate::exec::{
    finish, phase_partner, run_stages, stage_summary, JoinAcc, JoinOutput, JoinSpec, SBatcher,
    SharedSlots,
};

/// The memory-resident fraction `f₀` of each `S` partition and the
/// on-disk bucket layout for the rest.
#[derive(Clone, Copy, Debug)]
pub struct HybridPlan {
    /// Bytes of each `S` partition covered by the in-memory bucket.
    pub f0_bytes: u64,
    /// Fraction of the partition held in memory.
    pub f0: f64,
    /// Grace buckets over the remaining range.
    pub k: u64,
}

/// Choose `f₀` and `K` (§7.2 style): bucket 0 covers as much of `S` as
/// half the `Sproc` buffer can cache; the rest gets Grace's `K`.
pub fn plan_for(rels: &Relations, spec: &JoinSpec) -> HybridPlan {
    let part_bytes = rels.rel.s_part_bytes();
    let budget = spec.m_sproc / 2;
    let f0_bytes = budget.min(part_bytes);
    let f0 = f0_bytes as f64 / part_bytes as f64;
    // Worst-case spill objects: |RS_i| · (1 − f0).
    let worst_rs = (0..rels.rel.d)
        .map(|i| (0..rels.rel.d).map(|k| rels.sub_count(k, i)).sum::<u64>())
        .max()
        .unwrap_or(1);
    let spill = ((worst_rs as f64) * (1.0 - f0)).ceil().max(1.0) as u64;
    HybridPlan {
        f0_bytes,
        f0,
        k: choose_k(spill, rels.rel.r_size, spec.m_rproc),
    }
}

/// Two-level routing: in-memory range or spill bucket.
#[derive(Clone, Copy, Debug)]
pub struct HybridHashFn {
    part_bytes: u64,
    f0_bytes: u64,
    k: u64,
}

impl HybridHashFn {
    /// Build the router for the given plan.
    pub fn new(part_bytes: u64, plan: &HybridPlan) -> Self {
        HybridHashFn {
            part_bytes,
            f0_bytes: plan.f0_bytes,
            k: plan.k,
        }
    }

    /// `None` = bucket 0 (join immediately); `Some(b)` = spill bucket.
    /// Spill buckets, like Grace's, hold monotonically increasing `S`
    /// locations.
    pub fn route(&self, ptr: SPtr) -> Option<u32> {
        let off = ptr.offset(self.part_bytes);
        if off < self.f0_bytes {
            return None;
        }
        let span = self.part_bytes - self.f0_bytes;
        let within = (off - self.f0_bytes) as u128;
        Some(((within * self.k as u128) / span as u128).min(self.k as u128 - 1) as u32)
    }

    /// Second-level hash over the spill range: which chain of a
    /// `tsize`-slot table a pointer lands in, monotone *within its
    /// spill bucket* (so the table is processed in ascending `S`
    /// order, like Grace's).
    pub fn chain(&self, ptr: SPtr, tsize: u64) -> u32 {
        let span = (self.part_bytes - self.f0_bytes).max(1);
        let off = ptr.offset(self.part_bytes).saturating_sub(self.f0_bytes) as u128;
        let within_bucket = (off * self.k as u128) % span as u128;
        ((within_bucket * tsize as u128) / span as u128).min(tsize as u128 - 1) as u32
    }
}

struct HybridState<E: Env> {
    acc: JoinAcc,
    rf: Option<E::File>,
    rp: Option<ChunkedFile<E::File>>,
    rs: Option<ChunkedFile<E::File>>,
}

/// Execute the join (S catalog must be registered).
pub fn run<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let page = env.page_size();
    let r_size = rels.rel.r_size;
    let plan = plan_for(rels, spec);
    let part_bytes = rels.rel.s_part_bytes();
    let hash = HybridHashFn::new(part_bytes, &plan);
    let slots: std::sync::Arc<SharedSlots<ChunkedFile<E::File>>> = SharedSlots::new(d);

    // Stages: setup | pass0 | phase 1..d-1 | spill-bucket join.
    let stages = 2 + (d as usize - 1) + 1;

    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        stages,
        |_| HybridState::<E> {
            acc: JoinAcc::default(),
            rf: None,
            rp: None,
            rs: None,
        },
        |stage, i, state: &mut HybridState<E>| {
            let proc = ProcId::rproc(i);
            match stage {
                0 => {
                    state.rf = Some(env.open_file(proc, &rels.r_files[i as usize])?);
                    let _sf = env.open_file(proc, &rels.s_files[i as usize])?;
                    let rp_capacity = chunked_capacity(rels.rel.r_per_part(), r_size, d, page);
                    let rp_file = env.create_file(
                        proc,
                        &spec.temp_name(rels, &names::rp(i)),
                        DiskId(i),
                        rp_capacity,
                    )?;
                    state.rp = Some(ChunkedFile::new(rp_file, d, r_size, page)?);
                    let rs_objects: u64 = (0..d).map(|k| rels.sub_count(k, i)).sum();
                    let rs_capacity = chunked_capacity(rs_objects, r_size, plan.k as u32, page);
                    let rs_file = env.create_file(
                        proc,
                        &spec.temp_name(rels, &names::rs(i)),
                        DiskId(i),
                        rs_capacity,
                    )?;
                    let rs = ChunkedFile::new(rs_file, plan.k as u32, r_size, page)?;
                    slots.publish(i, rs.clone());
                    state.rs = Some(rs);
                    Ok(())
                }
                1 => {
                    // ---- pass 0: split R_i; bucket-0 pointers into S_i
                    // join immediately, spill buckets go to RS_i ----
                    let rf = state.rf.clone().ok_or_else(|| {
                        EnvError::InvalidConfig("hybrid: setup stage left no R file".into())
                    })?;
                    let rp = state.rp.clone().ok_or_else(|| {
                        EnvError::InvalidConfig("hybrid: setup stage left no RP area".into())
                    })?;
                    let rs = state.rs.clone().ok_or_else(|| {
                        EnvError::InvalidConfig("hybrid: setup stage left no RS area".into())
                    })?;
                    env.trace(
                        proc,
                        TraceEvent::PassStart {
                            proc: i,
                            pass: 0,
                            phase: 0,
                            disk: i,
                            area: format!("R_{i}"),
                        },
                    );
                    let ri_objects = rels.rel.r_per_part();
                    let mut batcher = SBatcher::new(env, proc, i, rels, spec.g_buffer);
                    let mut scan = ObjScan::new(&rf, 0, r_size, ri_objects);
                    let mut obj = vec![0u8; r_size as usize];
                    while scan.next_into(proc, &mut obj)? {
                        env.cpu(proc, CpuOp::Map, 1);
                        let ptr = r_sptr(&obj);
                        let j = ptr.partition(part_bytes);
                        if j == i {
                            env.cpu(proc, CpuOp::Hash, 1);
                            match hash.route(ptr) {
                                None => batcher.add(r_key(&obj), ptr, &mut state.acc)?,
                                Some(b) => {
                                    rs.append(proc, b, &obj)?;
                                    env.move_bytes(proc, MoveKind::PP, r_size as u64);
                                }
                            }
                        } else {
                            rp.append(proc, j, &obj)?;
                            env.move_bytes(proc, MoveKind::PP, r_size as u64);
                        }
                    }
                    batcher.flush(&mut state.acc)?;
                    env.trace(
                        proc,
                        TraceEvent::PassEnd {
                            proc: i,
                            pass: 0,
                            phase: 0,
                            disk: i,
                            area: format!("R_{i}"),
                            bytes: ri_objects * r_size as u64,
                            objects: ri_objects,
                        },
                    );
                    Ok(())
                }
                s if s < stages - 1 => {
                    // ---- pass 1, phase t: drain RP_(i,partner); route
                    // each object to an immediate join or a spill bucket
                    // of the partner's RS ----
                    let t = (s - 1) as u32;
                    let j = phase_partner(i, t, d);
                    env.trace(
                        proc,
                        TraceEvent::PassStart {
                            proc: i,
                            pass: 1,
                            phase: t,
                            disk: j,
                            area: format!("R({i},{j})"),
                        },
                    );
                    let rp = state.rp.as_ref().ok_or_else(|| {
                        EnvError::InvalidConfig("hybrid: pass 0 left no RP area".into())
                    })?;
                    let rs_j = slots.try_get(j)?;
                    let mut batcher = SBatcher::new(env, proc, j, rels, spec.g_buffer);
                    let mut reader = rp.stream_reader(j);
                    let mut obj = vec![0u8; r_size as usize];
                    let mut objects = 0u64;
                    while reader.next_into(proc, &mut obj)? {
                        objects += 1;
                        env.cpu(proc, CpuOp::Hash, 1);
                        let ptr = r_sptr(&obj);
                        match hash.route(ptr) {
                            None => batcher.add(r_key(&obj), ptr, &mut state.acc)?,
                            Some(b) => {
                                rs_j.append(proc, b, &obj)?;
                                env.move_bytes(proc, MoveKind::PP, r_size as u64);
                            }
                        }
                    }
                    batcher.flush(&mut state.acc)?;
                    env.trace(
                        proc,
                        TraceEvent::PassEnd {
                            proc: i,
                            pass: 1,
                            phase: t,
                            disk: j,
                            area: format!("R({i},{j})"),
                            bytes: objects * r_size as u64,
                            objects,
                        },
                    );
                    Ok(())
                }
                _ => spill_join(env, rels, spec, i, &plan, state),
            }
        },
    )?;

    let mut stage_names: Vec<String> = vec!["setup".into(), "pass0".into()];
    stage_names.extend((1..d).map(|t| format!("phase{t}")));
    stage_names.push("spill-join".into());
    let refs: Vec<&str> = stage_names.iter().map(|s| s.as_str()).collect();
    let summary = stage_summary(&refs, &times);
    Ok(finish(
        env,
        d,
        states.into_iter().map(|s| s.acc),
        summary,
        &times,
    ))
}

/// Grace-style per-bucket join over the spilled buckets only.
fn spill_join<E: Env>(
    env: &E,
    rels: &Relations,
    spec: &JoinSpec,
    i: u32,
    plan: &HybridPlan,
    state: &mut HybridState<E>,
) -> Result<()> {
    let proc = ProcId::rproc(i);
    let rs = state
        .rs
        .take()
        .ok_or_else(|| EnvError::InvalidConfig("hybrid: setup stage left no RS area".into()))?;
    let part_bytes = rels.rel.s_part_bytes();
    env.trace(
        proc,
        TraceEvent::PassStart {
            proc: i,
            pass: 2,
            phase: 0,
            disk: i,
            area: format!("RS_{i}"),
        },
    );
    let mut batcher = SBatcher::new(env, proc, i, rels, spec.g_buffer);
    let mut obj = vec![0u8; rels.rel.r_size as usize];
    let mut objects = 0u64;
    // Chain table reused across buckets (see grace::bucket_join):
    // `clear()` keeps capacity, so steady state allocates nothing.
    let mut table: Vec<Vec<(SPtr, u64)>> = Vec::new();
    for bucket in 0..plan.k as u32 {
        let len = rs.stream_len(bucket);
        if len == 0 {
            continue;
        }
        objects += len;
        let tsize = choose_tsize(len);
        let hash = HybridHashFn::new(part_bytes, plan);
        if table.len() < tsize as usize {
            table.resize_with(tsize as usize, Vec::new);
        }
        let mut reader = rs.stream_reader(bucket);
        while reader.next_into(proc, &mut obj)? {
            env.cpu(proc, CpuOp::Hash, 1);
            let ptr = r_sptr(&obj);
            table[hash.chain(ptr, tsize) as usize].push((ptr, r_key(&obj)));
        }
        for chain in &mut table[..tsize as usize] {
            if chain.is_empty() {
                continue;
            }
            chain.sort_unstable_by_key(|&(ptr, _)| ptr);
            for &(ptr, key) in chain.iter() {
                batcher.add(key, ptr, &mut state.acc)?;
            }
            chain.clear();
        }
    }
    batcher.flush(&mut state.acc)?;
    env.trace(
        proc,
        TraceEvent::PassEnd {
            proc: i,
            pass: 2,
            phase: 0,
            disk: i,
            area: format!("RS_{i}"),
            bytes: objects * rels.rel.r_size as u64,
            objects,
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_splits_at_f0_and_is_monotone() {
        let plan = HybridPlan {
            f0_bytes: 1000,
            f0: 0.25,
            k: 4,
        };
        let h = HybridHashFn::new(4000, &plan);
        assert_eq!(h.route(SPtr(0)), None);
        assert_eq!(h.route(SPtr(999)), None);
        let mut prev = -1i64;
        for off in (1000..4000).step_by(100) {
            let b = h.route(SPtr(off)).expect("spill range") as i64;
            assert!(b >= prev, "monotone buckets");
            assert!(b < 4);
            prev = b;
        }
        assert_eq!(h.route(SPtr(3999)), Some(3));
    }

    #[test]
    fn chain_is_monotone_within_a_spill_bucket() {
        let plan = HybridPlan {
            f0_bytes: 1000,
            f0: 0.25,
            k: 3,
        };
        let h = HybridHashFn::new(4000, &plan);
        // Walk pointers inside one spill bucket; chain indices must be
        // non-decreasing.
        let mut prev_chain = 0u32;
        let mut bucket = None;
        for off in (1000..2000).step_by(10) {
            let ptr = SPtr(off);
            let b = h.route(ptr).expect("spill");
            if bucket != Some(b) {
                bucket = Some(b);
                prev_chain = 0;
            }
            let c = h.chain(ptr, 16);
            assert!(c >= prev_chain, "chain order broke at off {off}");
            assert!(c < 16);
            prev_chain = c;
        }
    }

    #[test]
    fn zero_f0_degenerates_to_grace_routing() {
        let plan = HybridPlan {
            f0_bytes: 0,
            f0: 0.0,
            k: 8,
        };
        let h = HybridHashFn::new(4096, &plan);
        assert_eq!(h.route(SPtr(0)), Some(0));
        assert_eq!(h.route(SPtr(4095)), Some(7));
    }
}
