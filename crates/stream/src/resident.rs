//! The resident inner relation: `S` loaded once into partitioned store
//! files, indexed once (the stream's only pass-0 cost), then probed by
//! an unbounded sequence of R micro-batches and patched in place by
//! `append=`/`delete=` maintenance ops.
//!
//! Faithful to the paper's split of labor: the resident set *is* the
//! Sproc side — S partitions live one per disk, every probe goes
//! through [`Env::s_fetch_batch`]'s shared-buffer exchange, and the
//! partitioned index is built with pass-0 scatter costs declared up
//! front. Steady-state probes charge only pass-2-style work (hash/
//! compare per row plus the buffer exchanges); the differential and
//! trace tests in this crate hold that line.
//!
//! Storage is authoritative: a tombstoned slot's bytes carry a key with
//! [`DEAD_BIT`] set, so a probe discovers liveness from the fetched
//! S-object itself, not from session-local bookkeeping. The in-memory
//! key table exists to *generate* batches over the live set and to
//! price the per-batch verification oracle.

use std::collections::BTreeSet;
use std::sync::Arc;

use mmjoin::{choose_auto, Reservoir, SampleSummary, HISTOGRAM_BUCKETS, SAMPLE_CAP};
use mmjoin_env::machine::MachineParams;
use mmjoin_env::{CpuOp, DiskId, Env, FileOps, ProcId, Result, SCatalog, SPtr, TraceEvent};
use mmjoin_model::JoinInputs;
use mmjoin_relstore::SPTR_SIZE;
use mmjoin_relstore::{encode_s, names, pair_digest, s_key, RelConfig};

use crate::grammar::StreamHeader;

/// High bit marking a tombstoned slot's stored key. Live keys (slot
/// indices at build time, a monotone counter afterwards) never reach it.
pub const DEAD_BIT: u64 = 1 << 63;

/// S-objects requested per shared-buffer exchange while probing (same
/// granularity as the modern kernels' probe pipeline).
pub const PROBE_BATCH: usize = 2048;

/// Bytes per resident index entry: `(key u64, slot u64)`.
const IDX_ENTRY: u64 = 16;

/// How the resident index lays out its per-partition entries.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Layout {
    /// Radix-partitioned hash areas (faithful Grace/hybrid-style).
    Hash,
    /// Sorted runs (the `--modern` cache-conscious layout).
    Sorted,
}

impl Layout {
    /// Stable name used in [`TraceEvent::ResidentBuilt`].
    pub fn name(self) -> &'static str {
        match self {
            Layout::Hash => "hash",
            Layout::Sorted => "sorted",
        }
    }
}

/// What one probe micro-batch produced.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutput {
    /// Join pairs (rows whose target slot was live).
    pub pairs: u64,
    /// Order-independent checksum over the produced pairs.
    pub checksum: u64,
    /// Rows whose target slot was tombstoned at probe time.
    pub misses: u64,
}

/// The resident S relation plus its partitioned index.
pub struct ResidentSet<E: Env> {
    env: Arc<E>,
    rel: RelConfig,
    prefix: String,
    layout: Layout,
    /// Planner partition count the index was built with (per disk).
    pub index_partitions: u32,
    /// Current key of every slot; `DEAD_BIT` marks tombstones.
    keys: Vec<u64>,
    /// Slots currently live, kept sorted for deterministic draws.
    live: BTreeSet<u64>,
    /// Next fresh key handed to `append=`.
    next_key: u64,
    s_files: Vec<String>,
    idx_files: Vec<String>,
}

impl<E: Env> ResidentSet<E> {
    /// Load S (slot `k` starts with key `k`, matching
    /// `mmjoin_relstore::build`), sample its key distribution, let the
    /// planner pick the index shape, scatter the index (pass 0), and
    /// start the Sproc service.
    pub fn build(env: Arc<E>, header: &StreamHeader, machine: &MachineParams) -> Result<Self> {
        let rel = header.rel();
        rel.validate()?;
        let d = rel.d;

        // Sample S's key distribution and let the planner price the
        // layouts: the paper's partitioning algorithms become the hash
        // index, sort-merge the sorted runs. `mode=modern` forces the
        // cache-conscious layout.
        let mut res = Reservoir::<u64>::new(SAMPLE_CAP, header.seed);
        for slot in 0..rel.s_objects {
            res.push(slot);
        }
        let ptrs: Vec<(u32, u64)> = res
            .items()
            .iter()
            .map(|&slot| ((slot / rel.s_per_part()) as u32, slot))
            .collect();
        let summary =
            SampleSummary::from_pointers(&ptrs, rel.s_objects, rel.s_objects, d, HISTOGRAM_BUCKETS);
        let plan = choose_auto(
            machine,
            &probe_inputs(&rel, header, rel.s_objects, 1.0),
            Some(&summary),
        );
        let layout = if header.modern {
            Layout::Sorted
        } else {
            match plan.choice.algorithm {
                mmjoin_model::Algorithm::SortMerge => Layout::Sorted,
                _ => Layout::Hash,
            }
        };

        let proc = ProcId(0);
        let mut s_files = Vec::with_capacity(d as usize);
        let mut idx_files = Vec::with_capacity(d as usize);
        for j in 0..d {
            // The S partitions themselves: pre-existing data, loaded
            // outside measurement (the paper's relations exist before a
            // join begins).
            let s_name = names::scoped(&header.name, &names::s_part(j));
            env.create_file(proc, &s_name, DiskId(j), rel.s_part_bytes())?;
            let mut s_data = vec![0u8; rel.s_part_bytes() as usize];
            for k in 0..rel.s_per_part() {
                let slot = j as u64 * rel.s_per_part() + k;
                let off = (k * rel.s_size as u64) as usize;
                encode_s(&mut s_data[off..off + rel.s_size as usize], slot);
            }
            env.preload(&s_name, 0, &s_data)?;
            s_files.push(s_name);

            // The resident index: built *now*, at measured cost — the
            // stream's pass 0. Entries are slot-ordered within the
            // partition so a maintenance op can patch one entry in
            // place; the layout choice decides the declared CPU work
            // (radix scatter vs run formation).
            let idx_name = names::scoped(&header.name, &format!("IDX_{j}"));
            let idx_bytes = rel.s_per_part() * IDX_ENTRY;
            let idx = env.create_file(proc, &idx_name, DiskId(j), idx_bytes)?;
            let mut idx_data = vec![0u8; idx_bytes as usize];
            for k in 0..rel.s_per_part() {
                let slot = j as u64 * rel.s_per_part() + k;
                let off = (k * IDX_ENTRY) as usize;
                idx_data[off..off + 8].copy_from_slice(&slot.to_le_bytes());
                idx_data[off + 8..off + 16].copy_from_slice(&slot.to_le_bytes());
            }
            idx.write_at(proc, 0, &idx_data)?;
            match layout {
                Layout::Hash => env.cpu(proc, CpuOp::Hash, rel.s_per_part()),
                Layout::Sorted => env.cpu(
                    proc,
                    CpuOp::Compare,
                    rel.s_per_part() * (rel.s_per_part().max(2) as f64).log2().ceil() as u64,
                ),
            }
            env.trace(
                proc,
                TraceEvent::PassEnd {
                    proc: 0,
                    pass: 0,
                    phase: 0,
                    disk: j,
                    area: idx_name.clone(),
                    bytes: idx_bytes,
                    objects: rel.s_per_part(),
                },
            );
            idx_files.push(idx_name);
        }

        env.register_s(SCatalog {
            part_files: s_files.clone(),
            part_bytes: rel.s_part_bytes(),
            s_obj_size: rel.s_size,
        })?;
        env.trace(
            proc,
            TraceEvent::ResidentBuilt {
                parts: d,
                objects: rel.s_objects,
                layout: layout.name().to_string(),
            },
        );

        Ok(ResidentSet {
            env,
            rel,
            prefix: header.name.clone(),
            layout,
            index_partitions: plan.partitions,
            keys: (0..rel.s_objects).collect(),
            live: (0..rel.s_objects).collect(),
            next_key: rel.s_objects,
            s_files,
            idx_files,
        })
    }

    /// The chosen index layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Live (non-tombstoned) slots.
    pub fn live_count(&self) -> u64 {
        self.live.len() as u64
    }

    /// Current key of every slot (`DEAD_BIT` set on tombstones).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Relation shape of the resident set.
    pub fn rel(&self) -> &RelConfig {
        &self.rel
    }

    /// Planner inputs for a probe-only batch of `rows` rows against the
    /// current live set.
    pub fn batch_inputs(&self, header: &StreamHeader, rows: u64) -> JoinInputs {
        let mut inputs = probe_inputs(&self.rel, header, rows.max(1), 1.0);
        inputs.s_objects = self.live_count().max(1);
        inputs
    }

    /// Deterministically draw a `objects`-row micro-batch over the
    /// *current* live slots: row keys and targets are pure functions of
    /// `seed` and the live set, so a resumed session that replays the
    /// op sequence regenerates byte-identical batches.
    pub fn gen_batch(&self, objects: u64, seed: u64) -> Vec<(u64, u64)> {
        let live: Vec<u64> = self.live.iter().copied().collect();
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut rows = Vec::with_capacity(objects as usize);
        for n in 0..objects {
            state = splitmix64(state.wrapping_add(n));
            let slot = live[(state % live.len() as u64) as usize];
            state = splitmix64(state);
            // Row keys stay clear of DEAD_BIT so digests can't collide
            // with tombstone sentinels in tests.
            rows.push((state & !DEAD_BIT, slot));
        }
        rows
    }

    /// What a probe of `rows` *should* produce, priced from the
    /// in-memory key table — the per-batch verification oracle.
    pub fn expected(&self, rows: &[(u64, u64)]) -> BatchOutput {
        let mut out = BatchOutput::default();
        for &(r_key, slot) in rows {
            let key = self.keys[slot as usize];
            if key & DEAD_BIT != 0 {
                out.misses += 1;
            } else {
                out.pairs += 1;
                out.checksum = out.checksum.wrapping_add(pair_digest(r_key, key));
            }
        }
        out
    }

    /// Probe one micro-batch through the Sproc shared-buffer exchange.
    /// Liveness comes from the fetched bytes (tombstones carry
    /// [`DEAD_BIT`]), so storage — not session state — is authoritative.
    pub fn probe(&self, rows: &[(u64, u64)]) -> Result<BatchOutput> {
        let d = self.rel.d as usize;
        // Group rows by target partition, preserving per-row keys.
        let mut parts: Vec<(Vec<SPtr>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); d];
        for &(r_key, slot) in rows {
            let j = (slot / self.rel.s_per_part()) as usize;
            parts[j].0.push(self.rel.sptr_of(slot));
            parts[j].1.push(r_key);
        }
        let req_bytes = (self.rel.r_size + SPTR_SIZE) as u64;
        let mut out = BatchOutput::default();
        let mut fetched = Vec::new();
        for (j, (ptrs, keys)) in parts.iter().enumerate() {
            let proc = ProcId(j as u32);
            self.env.cpu(proc, CpuOp::Map, ptrs.len() as u64);
            self.env.cpu(
                proc,
                match self.layout {
                    Layout::Hash => CpuOp::Hash,
                    Layout::Sorted => CpuOp::Compare,
                },
                ptrs.len() as u64,
            );
            for (chunk, kchunk) in ptrs.chunks(PROBE_BATCH).zip(keys.chunks(PROBE_BATCH)) {
                fetched.clear();
                self.env
                    .s_fetch_batch(proc, j as u32, chunk, req_bytes, &mut fetched)?;
                for (n, obj) in fetched.chunks(self.rel.s_size as usize).enumerate() {
                    let key = s_key(obj);
                    if key & DEAD_BIT != 0 {
                        out.misses += 1;
                    } else {
                        out.pairs += 1;
                        out.checksum = out.checksum.wrapping_add(pair_digest(kchunk[n], key));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Tombstone `count` live slots drawn deterministically with
    /// `seed`. Returns the patched slots.
    pub fn delete(&mut self, count: u64, seed: u64) -> Result<Vec<u64>> {
        if count > self.live.len() as u64 {
            return Err(mmjoin_env::EnvError::InvalidConfig(format!(
                "delete={count} but only {} slots live",
                self.live.len()
            )));
        }
        let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
        let mut slots = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let live: Vec<u64> = self.live.iter().copied().collect();
            state = splitmix64(state);
            let slot = live[(state % live.len() as u64) as usize];
            self.live.remove(&slot);
            self.keys[slot as usize] = DEAD_BIT | slot;
            slots.push(slot);
        }
        self.patch_slots(&slots, "delete")?;
        Ok(slots)
    }

    /// Refill the `count` lowest tombstoned slots with fresh keys from
    /// the monotone counter. Returns the patched slots.
    pub fn append(&mut self, count: u64) -> Result<Vec<u64>> {
        let dead: Vec<u64> = (0..self.rel.s_objects)
            .filter(|s| !self.live.contains(s))
            .take(count as usize)
            .collect();
        if (dead.len() as u64) < count {
            return Err(mmjoin_env::EnvError::InvalidConfig(format!(
                "append={count} but only {} slots free",
                dead.len()
            )));
        }
        for &slot in &dead {
            self.keys[slot as usize] = self.next_key;
            self.next_key += 1;
            self.live.insert(slot);
        }
        self.patch_slots(&dead, "append")?;
        Ok(dead)
    }

    /// Write the current key of each patched slot into its S partition
    /// and its index entry — an in-place patch, never a rebuild. The
    /// writes go through charged `write_at`, so maintenance cost is
    /// measured, and the trace records the patch for the steady-state
    /// ("no pass 0 after warmup") check.
    fn patch_slots(&self, slots: &[u64], op: &str) -> Result<()> {
        let proc = ProcId(0);
        let mut obj = vec![0u8; self.rel.s_size as usize];
        for &slot in slots {
            let j = (slot / self.rel.s_per_part()) as usize;
            let local = slot % self.rel.s_per_part();
            let key = self.keys[slot as usize];
            encode_s(&mut obj, key);
            let s = self.env.open_file(proc, &self.s_files[j])?;
            s.write_at(proc, local * self.rel.s_size as u64, &obj)?;
            let idx = self.env.open_file(proc, &self.idx_files[j])?;
            let mut entry = [0u8; IDX_ENTRY as usize];
            entry[..8].copy_from_slice(&key.to_le_bytes());
            entry[8..].copy_from_slice(&slot.to_le_bytes());
            idx.write_at(proc, local * IDX_ENTRY, &entry)?;
            self.env.cpu(
                proc,
                match self.layout {
                    Layout::Hash => CpuOp::Hash,
                    Layout::Sorted => CpuOp::Compare,
                },
                1,
            );
        }
        self.env.trace(
            proc,
            TraceEvent::ResidentPatched {
                op: op.to_string(),
                objects: slots.len() as u64,
                live: self.live_count(),
            },
        );
        Ok(())
    }

    /// Stop the Sproc service and delete the resident files.
    pub fn teardown(self) -> Result<()> {
        self.env.shutdown_s();
        let proc = ProcId(0);
        for name in self.s_files.iter().chain(self.idx_files.iter()) {
            self.env.delete_file(proc, name)?;
        }
        let _ = self.prefix;
        Ok(())
    }
}

/// Probe-only planner inputs: `rows` outer rows against the resident
/// set under the header's budgets.
fn probe_inputs(rel: &RelConfig, header: &StreamHeader, rows: u64, skew: f64) -> JoinInputs {
    JoinInputs {
        r_objects: rows,
        s_objects: rel.s_objects,
        r_size: rel.r_size,
        s_size: rel.s_size,
        sptr_size: SPTR_SIZE,
        d: rel.d,
        skew,
        m_rproc: header.budget_bytes(),
        m_sproc: header.budget_bytes(),
        g_buffer: PROBE_BATCH as u64 * (rel.r_size + SPTR_SIZE + rel.s_size) as u64,
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
