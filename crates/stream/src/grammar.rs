//! The streaming job grammar: one *header* line describing the resident
//! inner relation, followed by an unbounded sequence of *op* lines —
//! probe micro-batches and incremental maintenance of the resident set.
//!
//! The grammar deliberately mirrors `mmjoin-serve`'s `key=value` job
//! lines so scripts for the two tiers read alike:
//!
//! ```text
//! resident=hot objects=4096 obj-size=64 d=4 mem-pages=64 seed=7 mode=modern
//! batch=b0 objects=256 seed=1
//! append=32 seed=2
//! delete=16 seed=3
//! batch-rows=bx rows=17:0,99:5,3:12
//! ```
//!
//! Blank lines and `#` comments are skipped. Every line round-trips
//! through [`StreamHeader::to_line`] / [`StreamOp::to_line`], which is
//! what the journal stores and replays on `--resume`.

use mmjoin_relstore::{RelConfig, MIN_R_SIZE};

/// Page size used to convert `mem-pages=` into byte budgets (matches
/// the serve tier's convention).
pub const PAGE: u64 = 4096;

/// The resident-relation declaration that opens a stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamHeader {
    /// Stream name; scopes the resident set's file names.
    pub name: String,
    /// `|S|`: number of resident inner objects (slots).
    pub s_objects: u64,
    /// S-object size in bytes.
    pub s_size: u32,
    /// `D`: disks / partitions of the resident set.
    pub d: u32,
    /// Per-process memory budget in pages (both Rproc and Sproc side).
    pub mem_pages: u64,
    /// Seed for the build-time sample of S.
    pub seed: u64,
    /// Use the cache-conscious sorted-run resident layout regardless of
    /// what the planner would pick.
    pub modern: bool,
}

impl StreamHeader {
    /// The resident set's relation shape. The R side is a placeholder
    /// (micro-batches arrive over the wire, not from stored `R_i`
    /// files); it is sized minimally so `RelConfig::validate` holds.
    pub fn rel(&self) -> RelConfig {
        RelConfig {
            r_size: MIN_R_SIZE,
            s_size: self.s_size,
            d: self.d,
            r_objects: self.d as u64,
            s_objects: self.s_objects,
        }
    }

    /// Byte budget per process (`mem-pages` × page size).
    pub fn budget_bytes(&self) -> u64 {
        self.mem_pages * PAGE
    }

    /// Parse a header line. Returns `Ok(None)` for blank/comment lines.
    pub fn parse_line(line: &str) -> Result<Option<StreamHeader>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut h = StreamHeader {
            name: String::new(),
            s_objects: 0,
            s_size: 64,
            d: 2,
            mem_pages: 64,
            seed: 42,
            modern: false,
        };
        for tok in line.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad token {tok:?} (expected key=value)"))?;
            match k {
                "resident" => h.name = v.to_string(),
                "objects" => h.s_objects = num(k, v)?,
                "obj-size" => h.s_size = num(k, v)? as u32,
                "d" => h.d = num(k, v)? as u32,
                "mem-pages" => h.mem_pages = num(k, v)?,
                "seed" => h.seed = num(k, v)?,
                "mode" => match v {
                    "modern" => h.modern = true,
                    "faithful" => h.modern = false,
                    _ => return Err(format!("unknown mode {v:?}")),
                },
                _ => return Err(format!("unknown header key {k:?}")),
            }
        }
        if h.name.is_empty() {
            return Err("header needs resident=NAME".into());
        }
        h.rel().validate().map_err(|e| e.to_string())?;
        Ok(Some(h))
    }

    /// Canonical line form (what the journal stores).
    pub fn to_line(&self) -> String {
        format!(
            "resident={} objects={} obj-size={} d={} mem-pages={} seed={}{}",
            self.name,
            self.s_objects,
            self.s_size,
            self.d,
            self.mem_pages,
            self.seed,
            if self.modern { " mode=modern" } else { "" }
        )
    }
}

/// One op line of an open stream.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamOp {
    /// Probe micro-batch: `objects` generated R-rows drawn over the
    /// live slots with `seed`.
    Batch {
        name: String,
        objects: u64,
        seed: u64,
    },
    /// Probe micro-batch with explicit `(key, slot)` rows.
    BatchRows { name: String, rows: Vec<(u64, u64)> },
    /// Refill `count` tombstoned slots with fresh keys.
    Append { count: u64, seed: u64 },
    /// Tombstone `count` live slots drawn with `seed`.
    Delete { count: u64, seed: u64 },
}

impl StreamOp {
    /// Parse an op line. Returns `Ok(None)` for blank/comment lines.
    pub fn parse_line(line: &str) -> Result<Option<StreamOp>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut kv = Vec::new();
        for tok in line.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad token {tok:?} (expected key=value)"))?;
            kv.push((k, v));
        }
        let get = |key: &str| kv.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        let op = match kv.first().map(|(k, _)| *k) {
            Some("batch") => StreamOp::Batch {
                name: get("batch").unwrap().to_string(),
                objects: num("objects", get("objects").ok_or("batch needs objects=")?)?,
                seed: num("seed", get("seed").unwrap_or("0"))?,
            },
            Some("batch-rows") => {
                let raw = get("rows").ok_or("batch-rows needs rows=")?;
                let mut rows = Vec::new();
                for pair in raw.split(',').filter(|p| !p.is_empty()) {
                    let (k, s) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("bad row {pair:?} (expected key:slot)"))?;
                    rows.push((num("key", k)?, num("slot", s)?));
                }
                StreamOp::BatchRows {
                    name: get("batch-rows").unwrap().to_string(),
                    rows,
                }
            }
            Some("append") => StreamOp::Append {
                count: num("append", get("append").unwrap())?,
                seed: num("seed", get("seed").unwrap_or("0"))?,
            },
            Some("delete") => StreamOp::Delete {
                count: num("delete", get("delete").unwrap())?,
                seed: num("seed", get("seed").unwrap_or("0"))?,
            },
            Some(k) => return Err(format!("unknown op {k:?}")),
            None => return Ok(None),
        };
        Ok(Some(op))
    }

    /// Canonical line form.
    pub fn to_line(&self) -> String {
        match self {
            StreamOp::Batch {
                name,
                objects,
                seed,
            } => format!("batch={name} objects={objects} seed={seed}"),
            StreamOp::BatchRows { name, rows } => {
                let body: Vec<String> = rows.iter().map(|(k, s)| format!("{k}:{s}")).collect();
                format!("batch-rows={name} rows={}", body.join(","))
            }
            StreamOp::Append { count, seed } => format!("append={count} seed={seed}"),
            StreamOp::Delete { count, seed } => format!("delete={count} seed={seed}"),
        }
    }

    /// Display label for results and stats.
    pub fn label(&self) -> &str {
        match self {
            StreamOp::Batch { name, .. } | StreamOp::BatchRows { name, .. } => name,
            StreamOp::Append { .. } => "append",
            StreamOp::Delete { .. } => "delete",
        }
    }

    /// True for the resident-set maintenance ops.
    pub fn is_mutation(&self) -> bool {
        matches!(self, StreamOp::Append { .. } | StreamOp::Delete { .. })
    }
}

fn num(key: &str, v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("{key}={v:?} is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_through_its_line_form() {
        for line in [
            "resident=hot objects=4096 obj-size=64 d=4 mem-pages=64 seed=7",
            "resident=hot objects=4096 obj-size=64 d=4 mem-pages=64 seed=7 mode=modern",
        ] {
            let h = StreamHeader::parse_line(line).unwrap().unwrap();
            assert_eq!(h.to_line(), line);
            let again = StreamHeader::parse_line(&h.to_line()).unwrap().unwrap();
            assert_eq!(again, h);
        }
    }

    #[test]
    fn header_rejects_bad_shapes() {
        assert!(
            StreamHeader::parse_line("objects=100 d=2").is_err(),
            "no name"
        );
        assert!(
            StreamHeader::parse_line("resident=x objects=100 d=3").is_err(),
            "objects not divisible by d"
        );
        assert!(StreamHeader::parse_line("resident=x objects=100 d=2 mode=warp").is_err());
        assert!(StreamHeader::parse_line("resident=x frobnicate=1").is_err());
        assert!(StreamHeader::parse_line("# comment").unwrap().is_none());
        assert!(StreamHeader::parse_line("   ").unwrap().is_none());
    }

    #[test]
    fn ops_round_trip_through_their_line_forms() {
        let ops = [
            StreamOp::Batch {
                name: "b0".into(),
                objects: 256,
                seed: 9,
            },
            StreamOp::BatchRows {
                name: "bx".into(),
                rows: vec![(17, 0), (99, 5), (3, 12)],
            },
            StreamOp::Append { count: 32, seed: 2 },
            StreamOp::Delete { count: 16, seed: 3 },
        ];
        for op in ops {
            let line = op.to_line();
            let again = StreamOp::parse_line(&line).unwrap().unwrap();
            assert_eq!(again, op, "{line}");
        }
    }

    #[test]
    fn ops_reject_malformed_lines() {
        assert!(StreamOp::parse_line("batch=b0").is_err(), "no objects");
        assert!(StreamOp::parse_line("batch-rows=bx rows=1-2").is_err());
        assert!(StreamOp::parse_line("resume=yes").is_err());
        assert!(StreamOp::parse_line("batch=b0 objects=ten").is_err());
        assert!(StreamOp::parse_line("").unwrap().is_none());
        assert!(StreamOp::parse_line("# nothing").unwrap().is_none());
    }
}
