//! The streaming session: one resident set, one ordered worker, an
//! unbounded op queue with backpressure, write-ahead journaling of
//! every op, and exactly-once resume.
//!
//! Ordering is the correctness backbone: `append=`/`delete=` mutate the
//! resident set, so batches must observe exactly the mutations that
//! preceded them in submission order. A single worker executes ops in
//! sequence, which also makes the journal's completion records a prefix
//! of its submission records — resume re-applies the op list in order
//! on a freshly rebuilt resident set, re-reports completed batches from
//! their journaled outputs (exactly once, no re-execution), and
//! re-executes only the suffix that never completed.
//!
//! The journal commit points mirror the serve tier:
//!
//! * `StreamOpened` — at open, committed (pins the header line so a
//!   resume with a different shape is refused);
//! * `BatchSubmitted` — before the op is queued, committed (a caller
//!   that got a sequence number back will find the op after a crash);
//! * `BatchCompleted` — before the result is visible, committed, and
//!   only for ops that verified clean (a failed op re-runs on resume).

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use mmjoin::probe_cost;
use mmjoin_env::machine::MachineParams;
use mmjoin_env::{Env, EnvError, Histogram, ProcId, Result, TraceEvent};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_recovery::{Journal, JournalRecord, ReplayState};

use crate::grammar::{StreamHeader, StreamOp, PAGE};
use crate::resident::{BatchOutput, ResidentSet};

/// Journal file name inside the stream journal directory.
const JOURNAL_FILE: &str = "stream.wal";

/// Journal capacity: generous for tens of thousands of op records.
const JOURNAL_CAPACITY: u64 = 4 << 20;

/// Process identity journal operations are attributed to.
const PROC: ProcId = ProcId(0);

/// Session configuration.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Backpressure bound: `submit` blocks while this many ops queue.
    pub queue_bound: usize,
    /// Machine parameters pricing per-batch admission.
    pub machine: MachineParams,
    /// Journal directory; `None` disables journaling (and resume).
    pub journal_dir: Option<PathBuf>,
    /// Replay an existing journal instead of starting fresh.
    pub resume: bool,
}

impl StreamConfig {
    /// Journaling disabled, default bound.
    pub fn ephemeral(machine: MachineParams) -> StreamConfig {
        StreamConfig {
            queue_bound: 64,
            machine,
            journal_dir: None,
            resume: false,
        }
    }
}

/// One finished op, batch or mutation.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Stream sequence number.
    pub seq: u64,
    /// Batch name, or `"append"`/`"delete"`.
    pub name: String,
    /// `"batch"`, `"append"` or `"delete"`.
    pub kind: &'static str,
    /// R rows probed (batches) or slots patched (mutations).
    pub rows: u64,
    /// Join pairs produced (0 for mutations).
    pub pairs: u64,
    /// Order-independent checksum over the pairs.
    pub checksum: u64,
    /// Rows that hit a tombstoned slot.
    pub misses: u64,
    /// Output matched the session's oracle.
    pub ok: bool,
    /// Planner-predicted probe seconds (0 for mutations).
    pub predicted_seconds: f64,
    /// Wall seconds queued before the worker picked the op up.
    pub queue_wait: f64,
    /// Wall seconds executing.
    pub exec_wall: f64,
    /// Environment-reported seconds (virtual on `SimEnv`): worst
    /// per-partition clock advance during the op.
    pub env_elapsed: f64,
    /// Live slots after the op.
    pub live_after: u64,
    /// Re-reported from the journal by `--resume`, not re-executed.
    pub resumed: bool,
    /// Error text when `ok` is false.
    pub error: Option<String>,
}

impl BatchResult {
    /// Client-observed latency.
    pub fn latency(&self) -> f64 {
        self.queue_wait + self.exec_wall
    }

    /// One JSON object (names come from the `key=value` grammar, so the
    /// only escaping needed is defensive).
    pub fn to_json(&self) -> String {
        let esc: String = self
            .name
            .chars()
            .filter(|c| !matches!(c, '"' | '\\'))
            .collect();
        format!(
            concat!(
                "{{\"seq\":{},\"name\":\"{}\",\"kind\":\"{}\",\"rows\":{},",
                "\"pairs\":{},\"checksum\":{},\"misses\":{},\"ok\":{},",
                "\"predicted_seconds\":{:.6},\"queue_wait\":{:.6},",
                "\"exec_wall\":{:.6},\"env_elapsed\":{:.6},\"live_after\":{},",
                "\"resumed\":{}}}"
            ),
            self.seq,
            esc,
            self.kind,
            self.rows,
            self.pairs,
            self.checksum,
            self.misses,
            self.ok,
            self.predicted_seconds,
            self.queue_wait,
            self.exec_wall,
            self.env_elapsed,
            self.live_after,
            self.resumed,
        )
    }
}

/// Aggregated session counters.
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    /// Ops accepted (batches + mutations).
    pub submitted: u64,
    /// Batches that completed and verified.
    pub completed: u64,
    /// Ops that failed verification or errored.
    pub failed: u64,
    /// Maintenance ops applied.
    pub mutations: u64,
    /// Join pairs across every batch.
    pub pairs: u64,
    /// Tombstone hits across every batch.
    pub misses: u64,
    /// Times a submitter blocked on the queue bound.
    pub backpressure: u64,
    /// Resident S slots (live + tombstoned).
    pub resident_objects: u64,
    /// Live slots right now.
    pub live_objects: u64,
    /// Resident builds this process paid (1, plus 1 per resume).
    pub resident_builds: u64,
    /// Slots patched in place by mutations.
    pub patched_objects: u64,
    /// Batches re-reported from the journal instead of re-executed.
    pub resumed_batches: u64,
    /// Journal records appended by this process.
    pub journal_appended_records: u64,
    /// Journal commits performed.
    pub journal_commits: u64,
    /// CRC-valid records replayed at startup.
    pub journal_replayed_records: u64,
    /// Committed bytes lost to a torn tail at startup.
    pub journal_torn_bytes: u64,
    /// Predicted probe seconds summed over batches.
    pub predicted_seconds: f64,
    /// Wall seconds executing, summed.
    pub exec_seconds: f64,
    /// Client-observed per-batch latency.
    pub batch_hist: Histogram,
    /// Per-op queue wait.
    pub queue_hist: Histogram,
}

impl StreamStats {
    /// Fold one finished op in.
    fn record(&mut self, r: &BatchResult) {
        if r.ok {
            if r.kind == "batch" {
                self.completed += 1;
            } else {
                self.mutations += 1;
                self.patched_objects += r.rows;
            }
        } else {
            self.failed += 1;
        }
        self.pairs += r.pairs;
        self.misses += r.misses;
        self.exec_seconds += r.exec_wall;
        self.predicted_seconds += r.predicted_seconds;
        self.live_objects = r.live_after;
        if r.resumed {
            self.resumed_batches += 1;
        }
        if r.kind == "batch" {
            self.batch_hist.record(r.latency());
        }
        self.queue_hist.record(r.queue_wait);
    }

    /// Snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"ops\":{{\"submitted\":{},\"completed\":{},\"failed\":{},",
                "\"mutations\":{},\"resumed\":{}}},",
                "\"probe\":{{\"pairs\":{},\"misses\":{},\"predicted_seconds\":{:.6},",
                "\"exec_seconds\":{:.6}}},",
                "\"resident\":{{\"objects\":{},\"live\":{},\"builds\":{},\"patched\":{}}},",
                "\"flow\":{{\"backpressure\":{}}},",
                "\"journal\":{{\"appended_records\":{},\"commits\":{},",
                "\"replayed_records\":{},\"torn_bytes\":{}}},",
                "\"batch\":{},\"queue\":{}}}"
            ),
            self.submitted,
            self.completed,
            self.failed,
            self.mutations,
            self.resumed_batches,
            self.pairs,
            self.misses,
            self.predicted_seconds,
            self.exec_seconds,
            self.resident_objects,
            self.live_objects,
            self.resident_builds,
            self.patched_objects,
            self.backpressure,
            self.journal_appended_records,
            self.journal_commits,
            self.journal_replayed_records,
            self.journal_torn_bytes,
            self.batch_hist.to_json(),
            self.queue_hist.to_json(),
        )
    }
}

struct QueuedOp {
    seq: u64,
    op: StreamOp,
    enqueued: Instant,
}

#[derive(Default)]
struct SessState {
    queue: VecDeque<QueuedOp>,
    busy: bool,
    shutdown: bool,
    next_seq: u64,
    results: Vec<BatchResult>,
    stats: StreamStats,
}

struct Shared<E: Env> {
    env: Arc<E>,
    header: StreamHeader,
    machine: MachineParams,
    journal: Option<Mutex<Journal<MmapEnv>>>,
    state: Mutex<SessState>,
    not_full: Condvar,
    not_empty: Condvar,
    idle: Condvar,
    bound: usize,
}

impl<E: Env> Shared<E> {
    fn lock(&self) -> MutexGuard<'_, SessState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn journal_commit(&self, rec: &JournalRecord) {
        if let Some(j) = &self.journal {
            let mut j = j.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = j.append_commit(rec) {
                eprintln!("mmjoin-stream: journal commit ({}) failed: {e}", rec.kind());
            }
        }
    }
}

/// A running streaming session over environment `E`.
pub struct StreamSession<E: Env + 'static> {
    shared: Arc<Shared<E>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl<E: Env + 'static> StreamSession<E> {
    /// Open a stream: set up (or replay) the journal, build the
    /// resident set, re-apply any replayed ops, and start the worker.
    pub fn open(env: Arc<E>, header: StreamHeader, cfg: StreamConfig) -> Result<StreamSession<E>> {
        header.rel().validate()?;
        let mut replayed: Option<ReplayState> = None;
        let mut journal_stats = (0u64, 0u64); // (replayed records, torn bytes)
        let journal = match &cfg.journal_dir {
            None => None,
            Some(dir) => {
                let jcfg = MmapEnvConfig {
                    root: dir.clone(),
                    num_disks: 1,
                    page_size: PAGE,
                };
                if cfg.resume {
                    let (jenv, adopted) = MmapEnv::recover(jcfg)?;
                    if adopted.iter().any(|n| n == JOURNAL_FILE) {
                        let (journal, rep) = Journal::open(jenv, JOURNAL_FILE, PROC)?;
                        journal_stats = (rep.records.len() as u64, rep.torn_bytes);
                        replayed = Some(ReplayState::from_records(&rep.records));
                        Some(Mutex::new(journal))
                    } else {
                        Some(Mutex::new(Journal::create(
                            jenv,
                            JOURNAL_FILE,
                            JOURNAL_CAPACITY,
                            PROC,
                        )?))
                    }
                } else {
                    let _ = std::fs::remove_dir_all(dir);
                    let jenv = MmapEnv::new(jcfg)?;
                    Some(Mutex::new(Journal::create(
                        jenv,
                        JOURNAL_FILE,
                        JOURNAL_CAPACITY,
                        PROC,
                    )?))
                }
            }
        };

        // A resumed stream must be the same stream: the journaled
        // header line pins the resident shape.
        if let Some(state) = &replayed {
            if let Some(line) = &state.stream_line {
                if *line != header.to_line() {
                    return Err(EnvError::InvalidConfig(format!(
                        "resume header mismatch: journal has {line:?}, caller has {:?}",
                        header.to_line()
                    )));
                }
            }
        }

        // Leftover resident files from the crashed process would make
        // the rebuild's create_file fail; they carry nothing a rebuild
        // cannot reproduce.
        let prefix = format!("{}.", header.name);
        for name in env.list_files() {
            if name.starts_with(&prefix) {
                env.delete_file(PROC, &name)?;
            }
        }

        let mut resident = ResidentSet::build(Arc::clone(&env), &header, &cfg.machine)?;

        let shared = Arc::new(Shared {
            env: Arc::clone(&env),
            header: header.clone(),
            machine: cfg.machine,
            journal,
            state: Mutex::new(SessState::default()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            idle: Condvar::new(),
            bound: cfg.queue_bound.max(1),
        });

        {
            let mut st = shared.lock();
            st.stats.resident_objects = header.s_objects;
            st.stats.live_objects = header.s_objects;
            st.stats.resident_builds = 1;
            st.stats.journal_replayed_records = journal_stats.0;
            st.stats.journal_torn_bytes = journal_stats.1;
        }

        if replayed.is_none() {
            shared.journal_commit(&JournalRecord::StreamOpened {
                line: header.to_line(),
            });
        }

        // Re-apply the replayed op list in sequence order on the fresh
        // resident set: completed mutations replay their state effect,
        // completed batches re-report exactly once, everything else
        // queues for normal execution.
        if let Some(state) = replayed {
            let mut st = shared.lock();
            for (seq, bs) in &state.batches {
                let op = match StreamOp::parse_line(&bs.line) {
                    Ok(Some(op)) => op,
                    _ => {
                        eprintln!(
                            "mmjoin-stream: journal op {seq} has unusable line {:?}; dropped",
                            bs.line
                        );
                        continue;
                    }
                };
                st.stats.submitted += 1;
                st.next_seq = st.next_seq.max(seq + 1);
                match &bs.completed {
                    Some((pairs, checksum, misses)) => {
                        if op.is_mutation() {
                            apply_mutation(&mut resident, &op)?;
                        }
                        let r = BatchResult {
                            seq: *seq,
                            name: op.label().to_string(),
                            kind: op_kind(&op),
                            rows: op_rows(&op),
                            pairs: *pairs,
                            checksum: *checksum,
                            misses: *misses,
                            ok: true,
                            predicted_seconds: 0.0,
                            queue_wait: 0.0,
                            exec_wall: 0.0,
                            env_elapsed: 0.0,
                            live_after: resident.live_count(),
                            resumed: true,
                            error: None,
                        };
                        st.stats.record(&r);
                        st.results.push(r);
                    }
                    None => st.queue.push_back(QueuedOp {
                        seq: *seq,
                        op,
                        enqueued: Instant::now(),
                    }),
                }
            }
        }

        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mmjoin-stream-worker".into())
                .spawn(move || worker_loop(shared, resident))
                .map_err(|e| EnvError::InvalidConfig(format!("worker spawn: {e}")))?
        };

        Ok(StreamSession {
            shared,
            worker: Some(worker),
        })
    }

    /// Submit one op; blocks while the queue is at the bound
    /// (backpressure). Returns the op's sequence number.
    pub fn submit(&self, op: StreamOp) -> Result<u64> {
        let mut st = self.shared.lock();
        let mut blocked = false;
        while st.queue.len() >= self.shared.bound && !st.shutdown {
            if !blocked {
                blocked = true;
                st.stats.backpressure += 1;
                self.shared.env.trace(
                    PROC,
                    TraceEvent::StreamBackpressure {
                        queued: st.queue.len() as u64,
                        bound: self.shared.bound as u64,
                    },
                );
            }
            st = self
                .shared
                .not_full
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        if st.shutdown {
            return Err(EnvError::InvalidConfig("stream is shut down".into()));
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.stats.submitted += 1;
        self.shared.journal_commit(&JournalRecord::BatchSubmitted {
            batch: seq,
            line: op.to_line(),
        });
        self.shared.env.trace(
            PROC,
            TraceEvent::BatchSubmitted {
                batch: seq,
                rows: op_rows(&op),
            },
        );
        st.queue.push_back(QueuedOp {
            seq,
            op,
            enqueued: Instant::now(),
        });
        self.shared.not_empty.notify_one();
        Ok(seq)
    }

    /// Submit every op line of a script (blank/comment lines skipped).
    pub fn submit_script(&self, script: &str) -> Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for line in script.lines() {
            if let Some(op) = StreamOp::parse_line(line).map_err(EnvError::InvalidConfig)? {
                seqs.push(self.submit(op)?);
            }
        }
        Ok(seqs)
    }

    /// Block until the queue is empty and the worker idle.
    pub fn drain(&self) {
        let mut st = self.shared.lock();
        while !st.queue.is_empty() || st.busy {
            st = self.shared.idle.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Results so far, submission order.
    pub fn results(&self) -> Vec<BatchResult> {
        let mut r = self.shared.lock().results.clone();
        r.sort_by_key(|x| x.seq);
        r
    }

    /// Counter snapshot (journal counters folded in live).
    pub fn stats(&self) -> StreamStats {
        let mut s = self.shared.lock().stats.clone();
        if let Some(j) = &self.shared.journal {
            let js = j.lock().unwrap_or_else(|e| e.into_inner()).stats();
            s.journal_appended_records = js.appended_records;
            s.journal_commits = js.commits;
        }
        s
    }

    /// Drain, stop the worker, and tear the resident set down.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl<E: Env + 'static> Drop for StreamSession<E> {
    fn drop(&mut self) {
        self.stop();
    }
}

fn op_kind(op: &StreamOp) -> &'static str {
    match op {
        StreamOp::Batch { .. } | StreamOp::BatchRows { .. } => "batch",
        StreamOp::Append { .. } => "append",
        StreamOp::Delete { .. } => "delete",
    }
}

fn op_rows(op: &StreamOp) -> u64 {
    match op {
        StreamOp::Batch { objects, .. } => *objects,
        StreamOp::BatchRows { rows, .. } => rows.len() as u64,
        StreamOp::Append { count, .. } | StreamOp::Delete { count, .. } => *count,
    }
}

fn apply_mutation<E: Env>(resident: &mut ResidentSet<E>, op: &StreamOp) -> Result<Vec<u64>> {
    match op {
        StreamOp::Append { count, .. } => resident.append(*count),
        StreamOp::Delete { count, seed } => resident.delete(*count, *seed),
        _ => Ok(Vec::new()),
    }
}

fn worker_loop<E: Env + 'static>(shared: Arc<Shared<E>>, mut resident: ResidentSet<E>) {
    loop {
        let item = {
            let mut st = shared.lock();
            loop {
                if let Some(item) = st.queue.pop_front() {
                    st.busy = true;
                    break Some(item);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.not_full.notify_all();
        let Some(item) = item else { break };

        let queue_wait = item.enqueued.elapsed().as_secs_f64();
        let started = Instant::now();
        let t0: Vec<f64> = (0..resident.rel().d)
            .map(|j| shared.env.now(ProcId(j)))
            .collect();

        let (rows, output, predicted, error) = execute(&shared, &mut resident, &item.op);

        let env_elapsed = (0..resident.rel().d)
            .map(|j| shared.env.now(ProcId(j)) - t0[j as usize])
            .fold(0.0, f64::max);
        let ok = error.is_none();
        let result = BatchResult {
            seq: item.seq,
            name: item.op.label().to_string(),
            kind: op_kind(&item.op),
            rows,
            pairs: output.pairs,
            checksum: output.checksum,
            misses: output.misses,
            ok,
            predicted_seconds: predicted,
            queue_wait,
            exec_wall: started.elapsed().as_secs_f64(),
            env_elapsed,
            live_after: resident.live_count(),
            resumed: false,
            error,
        };
        // Completion commits before the result becomes visible, and
        // only for clean ops: a failed op re-runs after a crash.
        if ok {
            shared.journal_commit(&JournalRecord::BatchCompleted {
                batch: item.seq,
                pairs: result.pairs,
                checksum: result.checksum,
                misses: result.misses,
            });
        }
        shared.env.trace(
            PROC,
            TraceEvent::BatchCompleted {
                batch: item.seq,
                pairs: result.pairs,
                misses: result.misses,
                ok,
            },
        );
        {
            let mut st = shared.lock();
            st.stats.record(&result);
            st.results.push(result);
            st.busy = false;
        }
        shared.idle.notify_all();
    }
    shared.env.shutdown_s();
    shared.idle.notify_all();
}

/// Run one op against the resident set. Returns
/// `(rows, output, predicted_seconds, error)`.
fn execute<E: Env>(
    shared: &Shared<E>,
    resident: &mut ResidentSet<E>,
    op: &StreamOp,
) -> (u64, BatchOutput, f64, Option<String>) {
    match op {
        StreamOp::Batch { .. } | StreamOp::BatchRows { .. } => {
            let rows = match op {
                StreamOp::Batch { objects, seed, .. } => resident.gen_batch(*objects, *seed),
                StreamOp::BatchRows { rows, .. } => rows.clone(),
                _ => unreachable!(),
            };
            let inputs = resident.batch_inputs(&shared.header, rows.len() as u64);
            let predicted = probe_cost(&shared.machine, &inputs, rows.len() as u64).total();
            let expected = resident.expected(&rows);
            match resident.probe(&rows) {
                Ok(out) if out == expected => (rows.len() as u64, out, predicted, None),
                Ok(out) => (
                    rows.len() as u64,
                    out,
                    predicted,
                    Some(format!(
                        "verification failed: got {out:?}, expected {expected:?}"
                    )),
                ),
                Err(e) => (
                    rows.len() as u64,
                    BatchOutput::default(),
                    predicted,
                    Some(e.to_string()),
                ),
            }
        }
        StreamOp::Append { count, .. } | StreamOp::Delete { count, .. } => {
            match apply_mutation(resident, op) {
                Ok(slots) => (slots.len() as u64, BatchOutput::default(), 0.0, None),
                Err(e) => (*count, BatchOutput::default(), 0.0, Some(e.to_string())),
            }
        }
    }
}
