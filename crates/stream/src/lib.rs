//! # mmjoin-stream — the streaming join tier
//!
//! The paper's joins are one-shot: build both relations, run the three
//! passes, report. This crate adds the *continuous* variant the same
//! machinery supports naturally once `S` is memory-resident: load the
//! inner relation once into mmstore partitions, build a partitioned
//! resident index (radix hash areas faithful, sorted runs `--modern`,
//! chosen by the sampled-histogram planner), then serve an unbounded
//! sequence of R micro-batches — each a short probe-only job priced by
//! [`mmjoin::probe_cost`] — plus incremental `append=`/`delete=`
//! maintenance that patches the resident index in place.
//!
//! The module split:
//!
//! * [`grammar`] — the `resident=`/`batch=`/`append=`/`delete=` line
//!   grammar (`mmjoin serve --stream` scripts and the journal's wire
//!   lines);
//! * [`resident`] — the resident set: build (the stream's only pass-0
//!   cost), probe through the Sproc shared-buffer exchange, in-place
//!   patch;
//! * [`session`] — the ordered worker, backpressure, write-ahead
//!   journaling, and exactly-once `--resume`.
//!
//! The invariants the tests in `tests/` enforce:
//!
//! * **differential** — streamed batches with interleaved mutations
//!   produce exactly the pairs/checksum a one-shot [`mmjoin::join`]
//!   produces over the equivalent final inputs, on `SimEnv` and
//!   `MmapEnv`, faithful and modern;
//! * **steady state** — after warmup no `pass=0` event appears in the
//!   trace, and a micro-batch is far cheaper than an independent full
//!   join of the same rows;
//! * **exactly-once** — a killed session resumed from its journal
//!   re-reports completed batches without re-executing them and
//!   continues the suffix.

pub mod grammar;
pub mod resident;
pub mod session;

pub use grammar::{StreamHeader, StreamOp, PAGE};
pub use resident::{BatchOutput, Layout, ResidentSet, DEAD_BIT, PROBE_BATCH};
pub use session::{BatchResult, StreamConfig, StreamSession, StreamStats};

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_env::machine::MachineParams;
    use mmjoin_env::Env;
    use mmjoin_vmsim::{SimConfig, SimEnv};
    use std::sync::Arc;

    fn header(d: u32, objects: u64, modern: bool) -> StreamHeader {
        StreamHeader {
            name: "t".into(),
            s_objects: objects,
            s_size: 64,
            d,
            mem_pages: 64,
            seed: 7,
            modern,
        }
    }

    fn sim(d: u32) -> Arc<SimEnv> {
        let mut cfg = SimConfig::waterloo96(d);
        cfg.rproc_pages = 64;
        cfg.sproc_pages = 64;
        Arc::new(SimEnv::new(cfg).unwrap())
    }

    fn machine() -> MachineParams {
        MachineParams::waterloo96()
    }

    #[test]
    fn resident_probe_matches_the_oracle() {
        let env = sim(2);
        let h = header(2, 512, false);
        let set = ResidentSet::build(Arc::clone(&env), &h, &machine()).unwrap();
        let rows = set.gen_batch(200, 3);
        let expected = set.expected(&rows);
        let got = set.probe(&rows).unwrap();
        assert_eq!(got, expected);
        assert_eq!(got.pairs, 200, "all slots live at build time");
        assert_eq!(got.misses, 0);
        assert!(got.checksum != 0);
    }

    #[test]
    fn mutations_patch_storage_and_probes_see_them() {
        let env = sim(2);
        let h = header(2, 128, false);
        let mut set = ResidentSet::build(Arc::clone(&env), &h, &machine()).unwrap();
        let deleted = set.delete(32, 9).unwrap();
        assert_eq!(deleted.len(), 32);
        assert_eq!(set.live_count(), 96);
        // A probe that targets only deleted slots misses everywhere —
        // and discovers that from the *stored* tombstone bytes.
        let rows: Vec<(u64, u64)> = deleted.iter().map(|&s| (1000 + s, s)).collect();
        let got = set.probe(&rows).unwrap();
        assert_eq!(got.pairs, 0);
        assert_eq!(got.misses, 32);
        // Refill: fresh keys (monotone counter, never reused) go into
        // the lowest tombstoned slots.
        let appended = set.append(8).unwrap();
        assert_eq!(appended.len(), 8);
        assert_eq!(set.live_count(), 104);
        let rows: Vec<(u64, u64)> = appended.iter().map(|&s| (2000 + s, s)).collect();
        let got = set.probe(&rows).unwrap();
        assert_eq!(got.pairs, 8);
        assert_eq!(got, set.expected(&rows));
        for &s in &appended {
            assert!(set.keys()[s as usize] >= 128, "fresh key, not a reuse");
        }
        // Over-deleting and over-appending are refused.
        assert!(set.delete(4096, 1).is_err());
        assert!(set.append(1000).is_err());
    }

    #[test]
    fn batch_generation_is_deterministic_and_respects_liveness() {
        let env = sim(2);
        let h = header(2, 256, false);
        let mut set = ResidentSet::build(Arc::clone(&env), &h, &machine()).unwrap();
        let a = set.gen_batch(100, 42);
        let b = set.gen_batch(100, 42);
        assert_eq!(a, b, "same seed, same state, same batch");
        assert_ne!(a, set.gen_batch(100, 43));
        set.delete(64, 5).unwrap();
        let dead: std::collections::BTreeSet<u64> = (0..256)
            .filter(|&s| set.keys()[s as usize] & DEAD_BIT != 0)
            .collect();
        for &(_, slot) in &set.gen_batch(500, 42) {
            assert!(!dead.contains(&slot), "generated batches target live slots");
        }
    }

    #[test]
    fn modern_header_forces_the_sorted_layout() {
        let env = sim(2);
        let set = ResidentSet::build(Arc::clone(&env), &header(2, 128, true), &machine()).unwrap();
        assert_eq!(set.layout(), Layout::Sorted);
        assert!(set.index_partitions >= 1);
    }

    #[test]
    fn session_runs_a_script_in_order_and_verifies_every_batch() {
        let env = sim(2);
        let h = header(2, 512, false);
        let sess =
            StreamSession::open(Arc::clone(&env), h, StreamConfig::ephemeral(machine())).unwrap();
        let script = "\
batch=b0 objects=128 seed=1
delete=64 seed=2
batch=b1 objects=128 seed=3
append=16 seed=4
batch=b2 objects=128 seed=5
";
        let seqs = sess.submit_script(script).unwrap();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        sess.drain();
        let results = sess.results();
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|r| r.ok), "{results:?}");
        assert_eq!(results[0].pairs, 128, "pre-delete batch sees all slots");
        assert_eq!(results[1].rows, 64);
        assert_eq!(results[1].live_after, 448);
        assert_eq!(results[2].pairs, 128, "batches draw over live slots only");
        assert_eq!(results[3].live_after, 464);
        let stats = sess.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.mutations, 2);
        assert_eq!(stats.pairs, 3 * 128);
        assert_eq!(stats.live_objects, 464);
        assert_eq!(stats.batch_hist.count(), 3);
        assert!(stats.predicted_seconds > 0.0);
        let j = stats.to_json();
        assert!(j.contains("\"submitted\":5"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        sess.shutdown();
    }

    #[test]
    fn batch_results_serialize_to_well_formed_json() {
        let env = sim(2);
        let sess = StreamSession::open(
            Arc::clone(&env),
            header(2, 128, false),
            StreamConfig::ephemeral(machine()),
        )
        .unwrap();
        sess.submit(StreamOp::Batch {
            name: "j\"x".into(),
            objects: 16,
            seed: 1,
        })
        .unwrap();
        sess.drain();
        let j = sess.results()[0].to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"kind\":\"batch\""));
        assert!(j.contains("\"name\":\"jx\""), "quote stripped: {j}");
        assert!(j.contains("\"resumed\":false"));
    }

    #[test]
    fn backpressure_blocks_submitters_at_the_bound() {
        let env = sim(2);
        let h = header(2, 128, false);
        let mut cfg = StreamConfig::ephemeral(machine());
        cfg.queue_bound = 2;
        let sess = Arc::new(StreamSession::open(Arc::clone(&env), h, cfg).unwrap());
        // Flood from a second thread; the bound forces it to block at
        // least once while the single worker drains.
        let flood = {
            let sess = Arc::clone(&sess);
            std::thread::spawn(move || {
                for i in 0..64 {
                    sess.submit(StreamOp::Batch {
                        name: format!("b{i}"),
                        objects: 64,
                        seed: i,
                    })
                    .unwrap();
                }
            })
        };
        flood.join().unwrap();
        sess.drain();
        let stats = sess.stats();
        assert_eq!(stats.completed, 64);
        assert!(
            stats.backpressure > 0,
            "a 64-op flood against bound 2 must block at least once"
        );
    }

    #[test]
    fn explicit_rows_probe_exact_targets() {
        let env = sim(2);
        let sess = StreamSession::open(
            Arc::clone(&env),
            header(2, 128, false),
            StreamConfig::ephemeral(machine()),
        )
        .unwrap();
        sess.submit(StreamOp::Delete { count: 1, seed: 0 }).unwrap();
        sess.drain();
        let dead_probe = StreamOp::BatchRows {
            name: "x".into(),
            rows: vec![(5, 0), (6, 1), (7, 2)],
        };
        sess.submit(dead_probe).unwrap();
        sess.drain();
        let r = &sess.results()[1];
        assert!(r.ok);
        assert_eq!(r.pairs + r.misses, 3);
        sess.shutdown();
    }

    #[test]
    fn env_file_table_is_clean_after_teardown() {
        let env = sim(2);
        let h = header(2, 128, false);
        let set = ResidentSet::build(Arc::clone(&env), &h, &machine()).unwrap();
        assert_eq!(env.list_files().len(), 4, "2 S parts + 2 index areas");
        set.teardown().unwrap();
        assert!(env.list_files().is_empty());
    }
}
