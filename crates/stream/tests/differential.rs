//! The streaming tier's ground truth: a sequence of micro-batches with
//! interleaved `append=`/`delete=` mutations must produce exactly the
//! pairs and checksum a one-shot [`mmjoin::join`] produces over the
//! equivalent final inputs — on the simulator and the real mmap store,
//! through the faithful kernels and the modern ones.
//!
//! The bridge is [`mmjoin_relstore::build_explicit`]: after the stream
//! finishes, the final S image (mutated keys, tombstone sentinels) and
//! the subset of probed rows whose target survived unmutated form a
//! one-shot workload whose oracle checksum is, by construction, the sum
//! of those rows' streamed digests. Running the real join over that
//! workload and verifying it closes the loop storage-to-storage: the
//! streamed results came from fetched S bytes, the one-shot results
//! from the same bytes rebuilt into a fresh workload.

use std::sync::Arc;

use mmjoin::{join, Algo, ExecMode, JoinSpec};
use mmjoin_env::machine::MachineParams;
use mmjoin_env::Env;
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_relstore::{build_explicit, pair_digest, RelConfig};
use mmjoin_stream::{ResidentSet, StreamHeader, DEAD_BIT};
use mmjoin_vmsim::{SimConfig, SimEnv};
use proptest::{collection::vec, proptest, ProptestConfig};

const D: u32 = 2;
const S_OBJECTS: u64 = 64;

/// One scheduled op, drawn by the property.
#[derive(Clone, Debug)]
enum TOp {
    Batch { objects: u64, seed: u64 },
    Append { count: u64 },
    Delete { count: u64, seed: u64 },
}

fn decode_ops(raw: &[(u32, u64, u64)]) -> Vec<TOp> {
    raw.iter()
        .map(|&(sel, count, seed)| match sel % 4 {
            0 | 1 => TOp::Batch {
                objects: count.clamp(1, 48),
                seed,
            },
            2 => TOp::Delete {
                count: count.clamp(1, 16),
                seed,
            },
            _ => TOp::Append {
                count: count.clamp(1, 16),
            },
        })
        .collect()
}

fn header(modern: bool) -> StreamHeader {
    StreamHeader {
        name: "diff".into(),
        s_objects: S_OBJECTS,
        s_size: 64,
        d: D,
        mem_pages: 64,
        seed: 11,
        modern,
    }
}

/// Drive the op schedule through a resident set on `stream_env`, then
/// check the surviving rows against a one-shot join on `oneshot_env`.
fn drive<ES: Env + 'static, EJ: Env>(
    stream_env: Arc<ES>,
    oneshot_env: &EJ,
    ops: &[TOp],
    modern: bool,
) {
    let machine = MachineParams::waterloo96();
    let h = header(modern);
    let mut set = ResidentSet::build(Arc::clone(&stream_env), &h, &machine).unwrap();

    // (r_key, slot, key at probe time, hit).
    let mut probed: Vec<(u64, u64, u64, bool)> = Vec::new();
    let mut streamed_pairs = 0u64;
    let mut streamed_checksum = 0u64;
    for op in ops {
        match op {
            TOp::Batch { objects, seed } => {
                let rows = set.gen_batch(*objects, *seed);
                let expected = set.expected(&rows);
                let got = set.probe(&rows).unwrap();
                assert_eq!(
                    got, expected,
                    "probe output must match the key-table oracle"
                );
                streamed_pairs += got.pairs;
                streamed_checksum = streamed_checksum.wrapping_add(got.checksum);
                for (r_key, slot) in rows {
                    let key = set.keys()[slot as usize];
                    probed.push((r_key, slot, key, key & DEAD_BIT == 0));
                }
            }
            TOp::Delete { count, seed } => {
                // Keep at least one slot live so later batches have
                // targets (and the one-shot padding has a home).
                let count = (*count).min(set.live_count().saturating_sub(1));
                if count > 0 {
                    set.delete(count, *seed).unwrap();
                }
            }
            TOp::Append { count } => {
                let dead = S_OBJECTS - set.live_count();
                let count = (*count).min(dead);
                if count > 0 {
                    set.append(count).unwrap();
                }
            }
        }
    }

    // Generated batches only target live slots, so every probe hits.
    assert_eq!(streamed_pairs, probed.len() as u64);

    // Rows whose target survived to the end unchanged are exactly the
    // rows a one-shot join over the final S image reproduces.
    let final_keys = set.keys().to_vec();
    let included: Vec<(u64, u64, u64)> = probed
        .iter()
        .filter(|&&(_, slot, key, hit)| hit && final_keys[slot as usize] == key)
        .map(|&(r_key, slot, key, _)| (r_key, slot, key))
        .collect();
    let pad_slot = (0..S_OBJECTS)
        .find(|&s| final_keys[s as usize] & DEAD_BIT == 0)
        .expect("at least one live slot");

    let mut rows: Vec<(u64, u64)> = included.iter().map(|&(k, s, _)| (k, s)).collect();
    let mut pad_checksum = 0u64;
    while rows.is_empty() || rows.len() as u64 % D as u64 != 0 {
        let pad_key = 0x7000_0000_0000_0000 + rows.len() as u64;
        pad_checksum =
            pad_checksum.wrapping_add(pair_digest(pad_key, final_keys[pad_slot as usize]));
        rows.push((pad_key, pad_slot));
    }
    let rel = RelConfig {
        r_size: 32,
        s_size: 64,
        d: D,
        r_objects: rows.len() as u64,
        s_objects: S_OBJECTS,
    };
    let rels = build_explicit(oneshot_env, rel, "one", &final_keys, &rows).unwrap();

    // The one-shot oracle checksum must be the included rows' streamed
    // digests plus the padding — the digest of a streamed pair and of
    // the same pair in a one-shot workload is the same function of the
    // same stored bytes.
    let included_checksum = included.iter().fold(0u64, |acc, &(k, _, key)| {
        acc.wrapping_add(pair_digest(k, key))
    });
    assert_eq!(
        rels.expected_checksum,
        included_checksum.wrapping_add(pad_checksum)
    );
    assert_eq!(rels.expected_pairs, rows.len() as u64);

    // And the executable join over that workload agrees with its
    // oracle, faithful or modern.
    let mode = if modern {
        ExecMode::Modern
    } else {
        ExecMode::Sequential
    };
    let spec = JoinSpec::new(64 * 4096, 64 * 4096).with_mode(mode);
    let out = join(oneshot_env, &rels, Algo::Grace, &spec).unwrap();
    assert_eq!(out.pairs, rels.expected_pairs);
    assert_eq!(out.checksum, rels.expected_checksum);
}

fn sim() -> Arc<SimEnv> {
    let mut cfg = SimConfig::waterloo96(D);
    cfg.rproc_pages = 64;
    cfg.sproc_pages = 64;
    Arc::new(SimEnv::new(cfg).unwrap())
}

fn mmap(tag: &str) -> Arc<MmapEnv> {
    let root =
        std::env::temp_dir().join(format!("mmjoin-stream-diff-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    Arc::new(
        MmapEnv::new(MmapEnvConfig {
            root,
            num_disks: D,
            page_size: 4096,
        })
        .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn streamed_batches_equal_a_oneshot_join_on_simenv(
        raw in vec((0u32..4, 1u64..48, 0u64..1_000_000), 1..8)
    ) {
        let ops = decode_ops(&raw);
        for modern in [false, true] {
            drive(sim(), sim().as_ref(), &ops, modern);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn streamed_batches_equal_a_oneshot_join_on_mmapenv(
        raw in vec((0u32..4, 1u64..48, 0u64..1_000_000), 1..6)
    ) {
        let ops = decode_ops(&raw);
        for (i, modern) in [false, true].into_iter().enumerate() {
            let stream_env = mmap(&format!("s{i}-{}", raw.len()));
            let oneshot_env = mmap(&format!("o{i}-{}", raw.len()));
            drive(stream_env, oneshot_env.as_ref(), &ops, modern);
        }
    }
}
