//! Steady-state guarantees of the streaming tier, on the simulator's
//! measured clock:
//!
//! * after warmup the stream never re-pays the resident build — no
//!   `pass=0` partitioning event and no `resident_built` event appears
//!   in the trace once batches are flowing;
//! * a steady-state micro-batch is at least 3× cheaper in environment
//!   time than an independent full join of the same rows against the
//!   same inner relation — the whole point of keeping S resident.

use std::sync::Arc;

use mmjoin::{join, Algo, ExecMode, JoinSpec};
use mmjoin_env::machine::MachineParams;
use mmjoin_env::{CollectingSink, TraceEvent};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_stream::{StreamConfig, StreamHeader, StreamOp, StreamSession};
use mmjoin_vmsim::{SimConfig, SimEnv};

const D: u32 = 2;
const S_OBJECTS: u64 = 4096;
const BATCH_ROWS: u64 = 256;

fn sim(pages: usize) -> Arc<SimEnv> {
    let mut cfg = SimConfig::waterloo96(D);
    cfg.rproc_pages = pages;
    cfg.sproc_pages = pages;
    Arc::new(SimEnv::new(cfg).unwrap())
}

#[test]
fn no_pass_zero_events_after_warmup_and_batches_beat_full_joins() {
    let env = sim(64);
    let sink = CollectingSink::new();
    env.set_trace_sink(sink.clone());

    let header = StreamHeader {
        name: "steady".into(),
        s_objects: S_OBJECTS,
        s_size: 64,
        d: D,
        mem_pages: 64,
        seed: 3,
        modern: false,
    };
    let sess = StreamSession::open(
        Arc::clone(&env),
        header,
        StreamConfig::ephemeral(MachineParams::waterloo96()),
    )
    .unwrap();

    // Warmup: the build itself plus one batch that pays the cold-cache
    // faults on S.
    sess.submit(StreamOp::Batch {
        name: "warmup".into(),
        objects: BATCH_ROWS,
        seed: 0,
    })
    .unwrap();
    sess.drain();
    let warmup_events = sink.records().len();

    // Steady state: many batches and a couple of in-place mutations.
    for i in 0..10u64 {
        sess.submit(StreamOp::Batch {
            name: format!("b{i}"),
            objects: BATCH_ROWS,
            seed: i + 1,
        })
        .unwrap();
        if i == 3 {
            sess.submit(StreamOp::Delete { count: 64, seed: 9 })
                .unwrap();
        }
        if i == 6 {
            sess.submit(StreamOp::Append { count: 32, seed: 0 })
                .unwrap();
        }
    }
    sess.drain();

    // The stream's whole warmup thesis: every pass-0 event (and the
    // resident build marker) happened before steady state began.
    let records = sink.records();
    assert!(
        records
            .iter()
            .take(warmup_events)
            .any(|r| matches!(r.event, TraceEvent::ResidentBuilt { .. })),
        "warmup contains the resident build"
    );
    for r in &records[warmup_events..] {
        match &r.event {
            TraceEvent::PassStart { pass, .. } | TraceEvent::PassEnd { pass, .. } => {
                assert_ne!(*pass, 0, "pass-0 partitioning after warmup: {:?}", r.event);
            }
            TraceEvent::ResidentBuilt { .. } => {
                panic!("resident rebuilt after warmup: {:?}", r.event)
            }
            _ => {}
        }
    }
    // Mutations patched in place (visible in the steady-state stream).
    assert!(records[warmup_events..]
        .iter()
        .any(|r| matches!(r.event, TraceEvent::ResidentPatched { .. })));

    // Steady-state batches: environment time per batch must be at
    // least 3x below an independent full join of the same row count
    // against the same |S| on the same machine.
    let results = sess.results();
    let steady: Vec<f64> = results
        .iter()
        .filter(|r| r.kind == "batch" && r.name != "warmup")
        .map(|r| r.env_elapsed)
        .collect();
    assert_eq!(steady.len(), 10);

    let full_env = sim(64);
    let spec = WorkloadSpec {
        rel: RelConfig {
            r_size: 16,
            s_size: 64,
            d: D,
            r_objects: BATCH_ROWS,
            s_objects: S_OBJECTS,
        },
        dist: PointerDist::Uniform,
        seed: 3,
        prefix: String::new(),
    };
    let rels = build(&*full_env, &spec).unwrap();
    let jspec = JoinSpec::new(64 * 4096, 64 * 4096).with_mode(ExecMode::Sequential);
    let full = join(&*full_env, &rels, Algo::Grace, &jspec).unwrap();
    for (i, &batch_seconds) in steady.iter().enumerate() {
        assert!(
            batch_seconds * 3.0 <= full.elapsed,
            "steady batch {i} took {batch_seconds:.6}s, full join {:.6}s — amortization lost",
            full.elapsed
        );
    }

    let stats = sess.stats();
    assert_eq!(stats.resident_builds, 1, "the build is paid exactly once");
    sess.shutdown();
}
