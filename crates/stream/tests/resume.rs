//! Exactly-once resume: a stream interrupted after journaling some
//! completions and some bare submissions must, on `--resume`,
//! re-report every completed op from the journal (no re-execution),
//! re-apply mutations to rebuild the resident state, re-execute only
//! the incomplete suffix, and then continue producing byte-identical
//! results to an uninterrupted reference run of the same op sequence.

use std::path::PathBuf;
use std::sync::Arc;

use mmjoin_env::machine::MachineParams;
use mmjoin_env::ProcId;
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_recovery::{Journal, JournalRecord};
use mmjoin_stream::{BatchResult, StreamConfig, StreamHeader, StreamOp, StreamSession};
use mmjoin_vmsim::{SimConfig, SimEnv};

fn sim() -> Arc<SimEnv> {
    let mut cfg = SimConfig::waterloo96(2);
    cfg.rproc_pages = 64;
    cfg.sproc_pages = 64;
    Arc::new(SimEnv::new(cfg).unwrap())
}

fn header() -> StreamHeader {
    StreamHeader {
        name: "res".into(),
        s_objects: 256,
        s_size: 64,
        d: 2,
        mem_pages: 64,
        seed: 5,
        modern: false,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmjoin-stream-res-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &std::path::Path, resume: bool) -> StreamConfig {
    StreamConfig {
        queue_bound: 64,
        machine: MachineParams::waterloo96(),
        journal_dir: Some(dir.to_path_buf()),
        resume,
    }
}

fn ops() -> Vec<StreamOp> {
    vec![
        StreamOp::Batch {
            name: "b0".into(),
            objects: 64,
            seed: 1,
        },
        StreamOp::Delete { count: 32, seed: 2 },
        StreamOp::Batch {
            name: "b1".into(),
            objects: 64,
            seed: 3,
        },
        StreamOp::Append { count: 8, seed: 0 },
        StreamOp::Batch {
            name: "b2".into(),
            objects: 64,
            seed: 4,
        },
        StreamOp::Batch {
            name: "b3".into(),
            objects: 64,
            seed: 5,
        },
    ]
}

fn outputs(results: &[BatchResult]) -> Vec<(u64, String, u64, u64, u64, bool)> {
    results
        .iter()
        .map(|r| (r.seq, r.name.clone(), r.pairs, r.checksum, r.misses, r.ok))
        .collect()
}

/// Reference: the whole op list in one uninterrupted session.
fn reference(dir: &std::path::Path) -> Vec<(u64, String, u64, u64, u64, bool)> {
    let sess = StreamSession::open(sim(), header(), cfg(dir, false)).unwrap();
    for op in ops() {
        sess.submit(op).unwrap();
    }
    sess.drain();
    let out = outputs(&sess.results());
    sess.shutdown();
    out
}

#[test]
fn resume_after_clean_stop_re_reports_and_continues_identically() {
    let ref_dir = tmp("ref");
    let want = reference(&ref_dir);

    // Interrupted run: first four ops complete, then the process goes
    // away (drop drains and stops; the journal survives on disk).
    let dir = tmp("clean");
    {
        let sess = StreamSession::open(sim(), header(), cfg(&dir, false)).unwrap();
        for op in ops().into_iter().take(4) {
            sess.submit(op).unwrap();
        }
        sess.drain();
    }

    // Resume in a fresh process-equivalent: new SimEnv, same journal.
    let sess = StreamSession::open(sim(), header(), cfg(&dir, true)).unwrap();
    let replayed = sess.results();
    assert_eq!(replayed.len(), 4, "all four completions re-reported");
    assert!(replayed.iter().all(|r| r.resumed && r.ok));
    for op in ops().into_iter().skip(4) {
        sess.submit(op).unwrap();
    }
    sess.drain();
    let got = outputs(&sess.results());
    assert_eq!(got, want, "resumed stream ≡ uninterrupted stream");
    let stats = sess.stats();
    assert_eq!(stats.resumed_batches, 4);
    assert!(
        stats.journal_replayed_records >= 9,
        "1 open + 4 submits + 4 completions"
    );
    sess.shutdown();

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_torn_run_re_executes_only_the_incomplete_suffix() {
    // Craft the journal a crashed process would leave: op 0 completed,
    // ops 1 and 2 submitted but never completed.
    let all = ops();
    let dir = tmp("torn");
    {
        let jenv = MmapEnv::new(MmapEnvConfig {
            root: dir.clone(),
            num_disks: 1,
            page_size: 4096,
        })
        .unwrap();
        let mut j = Journal::create(jenv, "stream.wal", 4 << 20, ProcId(0)).unwrap();
        j.append_commit(&JournalRecord::StreamOpened {
            line: header().to_line(),
        })
        .unwrap();
        j.append_commit(&JournalRecord::BatchSubmitted {
            batch: 0,
            line: all[0].to_line(),
        })
        .unwrap();
        // The completed batch's journaled output: taken from a scratch
        // run so the numbers are the true ones.
        let scratch_dir = tmp("torn-scratch");
        let scratch = StreamSession::open(sim(), header(), cfg(&scratch_dir, false)).unwrap();
        scratch.submit(all[0].clone()).unwrap();
        scratch.drain();
        let r0 = scratch.results()[0].clone();
        scratch.shutdown();
        let _ = std::fs::remove_dir_all(&scratch_dir);
        j.append_commit(&JournalRecord::BatchCompleted {
            batch: 0,
            pairs: r0.pairs,
            checksum: r0.checksum,
            misses: r0.misses,
        })
        .unwrap();
        j.append_commit(&JournalRecord::BatchSubmitted {
            batch: 1,
            line: all[1].to_line(),
        })
        .unwrap();
        j.append_commit(&JournalRecord::BatchSubmitted {
            batch: 2,
            line: all[2].to_line(),
        })
        .unwrap();
    }

    let ref_dir = tmp("torn-ref");
    let want: Vec<_> = reference(&ref_dir).into_iter().take(3).collect();

    let sess = StreamSession::open(sim(), header(), cfg(&dir, true)).unwrap();
    sess.drain();
    let results = sess.results();
    assert_eq!(results.len(), 3);
    assert!(results[0].resumed, "completed op re-reported, not re-run");
    assert!(
        !results[1].resumed && !results[2].resumed,
        "suffix re-executed"
    );
    assert_eq!(outputs(&results), want);
    assert_eq!(sess.stats().resumed_batches, 1);
    sess.shutdown();

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_a_mismatched_header() {
    let dir = tmp("mismatch");
    {
        let sess = StreamSession::open(sim(), header(), cfg(&dir, false)).unwrap();
        sess.submit(ops()[0].clone()).unwrap();
        sess.drain();
    }
    let mut other = header();
    other.s_objects = 512;
    let err = StreamSession::open(sim(), other, cfg(&dir, true));
    assert!(
        err.is_err(),
        "a resumed stream must match the journaled shape"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
