//! Noise control and least-squares fitting for probe samples.
//!
//! Every probe repeats its measurement and keeps the **median** (robust
//! against scheduler noise and one-off cache misses); the Fig. 1b map
//! costs are then fitted to the paper's `base + slope·blocks` linear
//! shape by ordinary least squares, with the RMS residual recorded in
//! the profile's provenance so a consumer can judge the fit quality.

use mmjoin_env::{EnvError, Result};

/// One `y = base + slope·x` least-squares fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted intercept.
    pub base: f64,
    /// Fitted slope.
    pub slope: f64,
    /// Root-mean-square residual of the fit, in `y` units.
    pub residual: f64,
}

/// Ordinary least squares over `(x, y)` points. Needs at least two
/// distinct `x` values.
pub fn fit_linear(points: &[(f64, f64)]) -> Result<LinearFit> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return Err(EnvError::InvalidConfig(
            "linear fit needs at least two points".into(),
        ));
    }
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return Err(EnvError::InvalidConfig(
            "linear fit needs at least two distinct x values".into(),
        ));
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let base = mean_y - slope * mean_x;
    let residual = (points
        .iter()
        .map(|&(x, y)| (y - (base + slope * x)).powi(2))
        .sum::<f64>()
        / n)
        .sqrt();
    Ok(LinearFit {
        base,
        slope,
        residual,
    })
}

/// The median of a sample set (mean of the middle two for even counts).
/// Panics on an empty slice — probes always run at least one rep.
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_has_zero_residual() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.base - 3.0).abs() < 1e-9);
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!(fit.residual < 1e-9);
    }

    #[test]
    fn noisy_line_recovers_coefficients() {
        // Symmetric noise around y = 0.05 + 9e-4 x (the waterloo96
        // newMap shape).
        let pts: Vec<(f64, f64)> = (1..=64)
            .map(|i| {
                let x = (i * 200) as f64;
                let noise = if i % 2 == 0 { 1.0e-3 } else { -1.0e-3 };
                (x, 0.05 + 9.0e-4 * x + noise)
            })
            .collect();
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.base - 0.05).abs() < 2e-3, "base {}", fit.base);
        assert!((fit.slope - 9.0e-4).abs() < 1e-6, "slope {}", fit.slope);
        assert!((fit.residual - 1.0e-3).abs() < 1e-4);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(fit_linear(&[]).is_err());
        assert!(fit_linear(&[(1.0, 2.0)]).is_err());
        assert!(fit_linear(&[(1.0, 2.0), (1.0, 3.0)]).is_err());
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut odd = vec![3.0, 1.0, 100.0];
        assert_eq!(median(&mut odd), 3.0);
        let mut even = vec![4.0, 1.0, 2.0, 100.0];
        assert_eq!(median(&mut even), 3.0);
    }
}
