//! The host measurement procedures — the paper's §3 measurements, run
//! against the machine executing this process instead of the 1996
//! Sequent testbed.
//!
//! * [`probe_dtt`] — Fig. 1a: per-block transfer time as a function of
//!   the band size over which random access occurs, measured with
//!   `O_DIRECT` reads/writes against a scratch file or device, falling
//!   back to buffered I/O (flagged) where direct I/O is unavailable
//!   (tmpfs, some network filesystems);
//! * [`probe_map_costs`] — Fig. 1b: `newMap`/`openMap`/`deleteMap` wall
//!   costs over a range of mapping sizes, least-squares fitted to the
//!   paper's linear `base + slope·blocks` shape;
//! * [`probe_memcpy`] — the `MT{pp,ps,sp,ss}` per-byte transfer rates,
//!   between private (heap) and shared (`MAP_SHARED` anonymous)
//!   memory;
//! * [`probe_context_switch`] — `CS`, via a two-thread ping-pong;
//! * [`probe_cpu`] — timed micro-loops for the `map`/`hash`/`compare`/
//!   `swap`/`transfer` CPU constants plus the per-fault overhead
//!   (first-touch cost of anonymous pages).
//!
//! Every probe runs `warmup` unrecorded repetitions followed by `reps`
//! recorded ones and keeps the **median** (see [`crate::fit`]).

use std::fs::{File, OpenOptions};
use std::hint::black_box;
use std::os::unix::fs::{FileExt, OpenOptionsExt};
use std::path::Path;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use mmjoin_env::machine::MapCostModel;
use mmjoin_env::{CpuOp, EnvError, MoveKind, Result};
use mmjoin_mmstore::{measure_map_costs, MapCostSample};
use mmjoin_vmsim::{DttSample, SplitMix64};

use crate::fit::{fit_linear, median, LinearFit};

/// `O_DIRECT` differs between Linux architectures (0o200000 on ARM,
/// 0o40000 elsewhere); the shimmed `libc` does not carry it.
#[cfg(any(target_arch = "aarch64", target_arch = "arm"))]
const O_DIRECT: i32 = 0o200000;
#[cfg(not(any(target_arch = "aarch64", target_arch = "arm")))]
const O_DIRECT: i32 = 0o40000;

/// Clocks can be coarse and micro-ops fast; no measured constant is
/// allowed to collapse to zero (the model divides by none of them, but
/// `DttCurve` requires positive times and a zero rate is a lie anyway).
const MIN_SECONDS: f64 = 1.0e-12;

/// Controls for one calibration run.
#[derive(Clone, Debug)]
pub struct ProbeSpec {
    /// Band sizes (blocks) for the Fig. 1a sweep, strictly increasing.
    pub band_sizes: Vec<u64>,
    /// Scratch area swept per band size, in blocks.
    pub area_blocks: u64,
    /// Block (page) size in bytes; also the `O_DIRECT` alignment.
    pub block_bytes: u64,
    /// Recorded repetitions per measurement (median-of-k).
    pub reps: u32,
    /// Unrecorded warmup repetitions per measurement.
    pub warmup: u32,
    /// Iterations per CPU micro-loop.
    pub cpu_iters: u64,
    /// Mapping sizes (blocks) for the Fig. 1b sweep.
    pub map_blocks: Vec<u64>,
    /// Ping-pong round trips for the context-switch probe.
    pub cs_rounds: u32,
    /// Pages first-touched by the fault-overhead probe.
    pub fault_pages: u64,
    /// Bytes per memcpy-rate measurement.
    pub memcpy_bytes: usize,
    /// RNG seed for the in-band permutations.
    pub seed: u64,
}

impl ProbeSpec {
    /// The full calibration: minutes of wall time, spans the paper's
    /// Fig. 1a band range.
    pub fn full() -> Self {
        ProbeSpec {
            band_sizes: vec![1, 64, 256, 1024, 3200, 6400, 12800],
            area_blocks: 25_600,
            block_bytes: 4096,
            reps: 5,
            warmup: 1,
            cpu_iters: 4_000_000,
            map_blocks: vec![64, 256, 1024, 4096],
            cs_rounds: 20_000,
            fault_pages: 4096,
            memcpy_bytes: 4 << 20,
            seed: 0x1996_0226,
        }
    }

    /// A seconds-scale calibration for CI smoke and tests: same
    /// procedures, smaller sweeps.
    pub fn quick() -> Self {
        ProbeSpec {
            band_sizes: vec![1, 16, 64, 256],
            area_blocks: 1024,
            block_bytes: 4096,
            reps: 3,
            warmup: 1,
            cpu_iters: 200_000,
            map_blocks: vec![16, 64, 256],
            cs_rounds: 2_000,
            fault_pages: 512,
            memcpy_bytes: 1 << 20,
            seed: 0x1996_0226,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.band_sizes.is_empty() || self.map_blocks.is_empty() {
            return Err(EnvError::InvalidConfig(
                "probe spec needs band and map sizes".into(),
            ));
        }
        if self.band_sizes.windows(2).any(|w| w[1] <= w[0]) {
            return Err(EnvError::InvalidConfig(
                "band sizes must strictly increase".into(),
            ));
        }
        let max_band = *self.band_sizes.last().unwrap();
        if max_band > self.area_blocks {
            return Err(EnvError::InvalidConfig(format!(
                "largest band ({max_band} blocks) exceeds the scratch area ({} blocks)",
                self.area_blocks
            )));
        }
        if self.block_bytes == 0 || !self.block_bytes.is_multiple_of(512) {
            return Err(EnvError::InvalidConfig(
                "block size must be a positive multiple of 512".into(),
            ));
        }
        if self.reps == 0 {
            return Err(EnvError::InvalidConfig("reps must be at least 1".into()));
        }
        Ok(())
    }
}

/// A page-aligned I/O buffer, as `O_DIRECT` requires.
struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
    layout: std::alloc::Layout,
}

impl AlignedBuf {
    fn new(len: usize, align: usize) -> AlignedBuf {
        let layout = std::alloc::Layout::from_size_align(len, align).expect("valid layout");
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "aligned allocation failed");
        AlignedBuf { ptr, len, layout }
    }

    fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.ptr, self.layout) };
    }
}

/// The Fig. 1a measurement outcome.
#[derive(Clone, Debug)]
pub struct DttProbe {
    /// Per-band medians, one row per requested band size.
    pub samples: Vec<DttSample>,
    /// Whether the sweep ran under `O_DIRECT`. When false the numbers
    /// include the page cache and mostly measure memory, not the disk —
    /// the profile records the flag so consumers know.
    pub direct_io: bool,
}

/// Where the scratch area came from, so cleanup only removes what the
/// probe itself created.
struct Scratch {
    file: File,
    owned: Option<std::path::PathBuf>,
    direct_io: bool,
    area_blocks: u64,
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if let Some(path) = &self.owned {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Open (or create) the scratch target, preferring `O_DIRECT`.
///
/// An existing `target` — a pre-made scratch file or a block device the
/// caller may clobber — is used at its current size; a missing one is
/// created at `area_blocks × block_bytes`, filled once, and removed
/// when the probe finishes. **The target's contents are overwritten**
/// by the write sweep either way.
fn open_scratch(target: &Path, spec: &ProbeSpec) -> Result<Scratch> {
    let exists = target.exists();
    let open = |direct: bool| {
        let mut opts = OpenOptions::new();
        opts.read(true).write(true).create(!exists);
        if direct {
            opts.custom_flags(O_DIRECT);
        }
        opts.open(target)
    };
    let (file, direct_io) = match open(true) {
        Ok(f) => (f, true),
        Err(_) => (open(false)?, false),
    };
    let bytes = spec.area_blocks * spec.block_bytes;
    let len = file.metadata()?.len();
    let area_blocks = if exists && len > 0 {
        let blocks = len / spec.block_bytes;
        let needed = *spec.band_sizes.last().unwrap();
        if blocks < needed {
            return Err(EnvError::InvalidConfig(format!(
                "--device target holds {blocks} blocks; the largest band needs {needed}"
            )));
        }
        blocks.min(spec.area_blocks)
    } else {
        file.set_len(bytes)?;
        spec.area_blocks
    };
    let mut scratch = Scratch {
        file,
        owned: (!exists).then(|| target.to_path_buf()),
        direct_io,
        area_blocks,
    };
    // Fill the measured area once so reads hit allocated blocks, not
    // holes; direct-I/O probing of unwritten extents would measure the
    // filesystem's zero path instead of the disk. Also verifies the
    // O_DIRECT handle actually accepts aligned transfers — some
    // filesystems fail only at I/O time; fall back to buffered there.
    let mut buf = AlignedBuf::new(spec.block_bytes as usize, spec.block_bytes as usize);
    buf.as_mut_slice().fill(0xA5);
    if let Err(e) = scratch.file.write_all_at(buf.as_slice(), 0) {
        if scratch.direct_io {
            scratch.file = open(false)?;
            scratch.direct_io = false;
        } else {
            return Err(e.into());
        }
    }
    for block in 0..scratch.area_blocks {
        scratch
            .file
            .write_all_at(buf.as_slice(), block * spec.block_bytes)?;
    }
    scratch.file.sync_all()?;
    Ok(scratch)
}

/// One timed sweep over the whole area at band size `band`: bands are
/// visited in sequence, blocks within a band in random order, each
/// exactly once (the paper's "no duplicates").
fn dtt_sweep(
    scratch: &Scratch,
    spec: &ProbeSpec,
    band: u64,
    write: bool,
    rng: &mut SplitMix64,
    buf: &mut AlignedBuf,
) -> Result<f64> {
    let mut perm: Vec<u64> = Vec::with_capacity(band as usize);
    let mut blocks = 0u64;
    let started = Instant::now();
    let mut base = 0u64;
    while base + band <= scratch.area_blocks {
        perm.clear();
        perm.extend(base..base + band);
        if band > 1 {
            rng.shuffle(&mut perm);
        }
        for &b in &perm {
            let offset = b * spec.block_bytes;
            if write {
                scratch.file.write_all_at(buf.as_slice(), offset)?;
            } else {
                scratch.file.read_exact_at(buf.as_mut_slice(), offset)?;
                black_box(buf.as_slice()[0]);
            }
            blocks += 1;
        }
        base += band;
    }
    if write {
        // The paper's dttw includes the deferred write-back the OS
        // performs on the job's behalf; charge the flush to the sweep.
        scratch.file.sync_all()?;
    }
    Ok((started.elapsed().as_secs_f64() / blocks.max(1) as f64).max(MIN_SECONDS))
}

/// Run the Fig. 1a band sweep against `target`.
pub fn probe_dtt(target: &Path, spec: &ProbeSpec) -> Result<DttProbe> {
    spec.validate()?;
    let scratch = open_scratch(target, spec)?;
    let mut buf = AlignedBuf::new(spec.block_bytes as usize, spec.block_bytes as usize);
    buf.as_mut_slice().fill(0x5A);
    let mut samples = Vec::with_capacity(spec.band_sizes.len());
    for &band in &spec.band_sizes {
        let mut one = |write: bool| -> Result<f64> {
            let mut rng = SplitMix64::new(spec.seed ^ band.wrapping_mul(0x51ED));
            for _ in 0..spec.warmup {
                dtt_sweep(&scratch, spec, band, write, &mut rng, &mut buf)?;
            }
            let mut times = Vec::with_capacity(spec.reps as usize);
            for _ in 0..spec.reps {
                times.push(dtt_sweep(&scratch, spec, band, write, &mut rng, &mut buf)?);
            }
            Ok(median(&mut times))
        };
        samples.push(DttSample {
            band,
            read: one(false)?,
            write: one(true)?,
        });
    }
    Ok(DttProbe {
        samples,
        direct_io: scratch.direct_io,
    })
}

/// The Fig. 1b measurement outcome.
#[derive(Clone, Debug)]
pub struct MapProbe {
    /// Raw per-size samples (averages over `reps` iterations).
    pub samples: Vec<MapCostSample>,
    /// The three linear fits packaged in model shape.
    pub model: MapCostModel,
    /// Fits for `newMap`, `openMap`, `deleteMap`, in that order.
    pub fits: [LinearFit; 3],
}

/// Measure and fit the three map-setup cost lines inside `dir`
/// (created if missing, removed afterwards).
pub fn probe_map_costs(dir: &Path, spec: &ProbeSpec) -> Result<MapProbe> {
    spec.validate()?;
    let samples = measure_map_costs(dir, spec.block_bytes, &spec.map_blocks, spec.reps)?;
    let _ = std::fs::remove_dir_all(dir);
    let series = |f: fn(&MapCostSample) -> f64| -> Vec<(f64, f64)> {
        samples.iter().map(|s| (s.blocks as f64, f(s))).collect()
    };
    let fits = [
        fit_linear(&series(|s| s.new_map))?,
        fit_linear(&series(|s| s.open_map))?,
        fit_linear(&series(|s| s.delete_map))?,
    ];
    // A negative fitted intercept (possible under noise when the slope
    // dominates) would make tiny maps cost negative time in the model;
    // clamp to zero, the slope carries the signal.
    let model = MapCostModel {
        new_base: fits[0].base.max(0.0),
        new_per_block: fits[0].slope.max(0.0),
        open_base: fits[1].base.max(0.0),
        open_per_block: fits[1].slope.max(0.0),
        delete_base: fits[2].base.max(0.0),
        delete_per_block: fits[2].slope.max(0.0),
    };
    Ok(MapProbe {
        samples,
        model,
        fits,
    })
}

/// An anonymous `MAP_SHARED` region — the "shared portion of a
/// segment" in the paper's `MT` taxonomy.
struct SharedBuf {
    ptr: *mut u8,
    len: usize,
}

impl SharedBuf {
    fn new(len: usize) -> Result<SharedBuf> {
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(EnvError::InvalidConfig(
                "cannot map anonymous shared memory".into(),
            ));
        }
        Ok(SharedBuf {
            ptr: ptr as *mut u8,
            len,
        })
    }

    fn ptr(&self) -> *mut u8 {
        self.ptr
    }
}

impl Drop for SharedBuf {
    fn drop(&mut self) {
        unsafe { libc::munmap(self.ptr as *mut libc::c_void, self.len) };
    }
}

/// Measure the four `MT` per-byte transfer rates. Returned array is
/// indexed by [`MoveKind::index`].
pub fn probe_memcpy(spec: &ProbeSpec) -> Result<[f64; 4]> {
    spec.validate()?;
    let len = spec.memcpy_bytes;
    let mut private_a = vec![1u8; len];
    let mut private_b = vec![2u8; len];
    let shared_a = SharedBuf::new(len)?;
    let shared_b = SharedBuf::new(len)?;
    // First-touch both shared regions so the timed copies measure
    // steady-state transfers, not page instantiation.
    unsafe {
        std::ptr::write_bytes(shared_a.ptr(), 3, len);
        std::ptr::write_bytes(shared_b.ptr(), 4, len);
    }
    let mut out = [0.0f64; 4];
    for kind in MoveKind::ALL {
        let (src, dst): (*const u8, *mut u8) = match kind {
            MoveKind::PP => (private_a.as_ptr(), private_b.as_mut_ptr()),
            MoveKind::PS => (private_a.as_ptr(), shared_b.ptr()),
            MoveKind::SP => (shared_a.ptr(), private_b.as_mut_ptr()),
            MoveKind::SS => (shared_a.ptr(), shared_b.ptr()),
        };
        let run = || {
            let started = Instant::now();
            unsafe { std::ptr::copy_nonoverlapping(src, dst, len) };
            black_box(unsafe { *dst });
            started.elapsed().as_secs_f64() / len as f64
        };
        for _ in 0..spec.warmup {
            run();
        }
        let mut times: Vec<f64> = (0..spec.reps).map(|_| run()).collect();
        out[kind.index()] = median(&mut times).max(MIN_SECONDS);
    }
    black_box(private_a.as_mut_slice());
    black_box(private_b.as_mut_slice());
    Ok(out)
}

/// Two threads alternating through a mutex + condvar: each round trip
/// is two scheduler handoffs, so `CS = elapsed / (2 × rounds)`.
pub fn probe_context_switch(spec: &ProbeSpec) -> Result<f64> {
    spec.validate()?;
    let run = || -> Result<f64> {
        let shared = std::sync::Arc::new((Mutex::new(0u32), Condvar::new()));
        let rounds = spec.cs_rounds;
        let peer = std::sync::Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("mmjoin-cal-cs".into())
            .spawn(move || {
                let (lock, cv) = &*peer;
                let mut turn = lock.lock().unwrap_or_else(|e| e.into_inner());
                for _ in 0..rounds {
                    while *turn % 2 == 0 {
                        turn = cv.wait(turn).unwrap_or_else(|e| e.into_inner());
                    }
                    *turn += 1;
                    cv.notify_one();
                }
            })
            .map_err(|e| EnvError::InvalidConfig(format!("cannot spawn cs probe thread: {e}")))?;
        let started = Instant::now();
        {
            let (lock, cv) = &*shared;
            let mut turn = lock.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..rounds {
                *turn += 1;
                cv.notify_one();
                while *turn % 2 == 1 {
                    turn = cv.wait(turn).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        handle
            .join()
            .map_err(|_| EnvError::InvalidConfig("cs probe thread panicked".into()))?;
        Ok(elapsed / (2.0 * rounds as f64))
    };
    for _ in 0..spec.warmup {
        run()?;
    }
    let mut times = Vec::with_capacity(spec.reps as usize);
    for _ in 0..spec.reps {
        times.push(run()?);
    }
    Ok(median(&mut times).max(MIN_SECONDS))
}

/// Time `iters` iterations of `body` and return seconds per iteration.
fn micro_loop(iters: u64, mut body: impl FnMut(u64)) -> f64 {
    let started = Instant::now();
    for i in 0..iters {
        body(i);
    }
    (started.elapsed().as_secs_f64() / iters.max(1) as f64).max(MIN_SECONDS)
}

/// Median-of-reps around a micro-loop.
fn timed_op(spec: &ProbeSpec, mut run: impl FnMut() -> f64) -> f64 {
    for _ in 0..spec.warmup {
        run();
    }
    let mut times: Vec<f64> = (0..spec.reps).map(|_| run()).collect();
    median(&mut times)
}

/// Measure the six per-operation CPU constants. Returned array is
/// indexed by [`CpuOp::index`].
pub fn probe_cpu(spec: &ProbeSpec) -> Result<[f64; 6]> {
    spec.validate()?;
    let iters = spec.cpu_iters.max(1);
    let mut out = [0.0f64; 6];

    // MAP(sptr): partition arithmetic on a virtual pointer.
    out[CpuOp::Map.index()] = timed_op(spec, || {
        let mut acc = 0u64;
        let t = micro_loop(iters, |i| {
            let sptr = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            acc = acc.wrapping_add((sptr >> 12) % 17);
        });
        black_box(acc);
        t
    });

    // hash: one multiplicative-xor hash step per key, the shape the
    // Grace/hybrid partitioning and hash-table chains use.
    out[CpuOp::Hash.index()] = timed_op(spec, || {
        let mut acc = 0u64;
        let t = micro_loop(iters, |i| {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            acc ^= z ^ (z >> 27);
        });
        black_box(acc);
        t
    });

    // compare / swap / transfer: heap-of-pointers operations over a
    // working set bigger than L1 so the constants include realistic
    // cache behaviour.
    let n = 1usize << 14;
    let mask = (n - 1) as u64;
    let mut keys: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x51ED) & mask)
        .collect();
    out[CpuOp::Compare.index()] = timed_op(spec, || {
        let mut acc = 0u64;
        let t = micro_loop(iters, |i| {
            let a = keys[(i & mask) as usize];
            let b = keys[(i.wrapping_mul(7) & mask) as usize];
            acc += u64::from(a < b);
        });
        black_box(acc);
        t
    });
    out[CpuOp::Swap.index()] = timed_op(spec, || {
        let t = micro_loop(iters, |i| {
            keys.swap((i & mask) as usize, (i.wrapping_mul(13) & mask) as usize);
        });
        black_box(keys.as_slice());
        t
    });
    let mut heap_src: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i ^ 0xFF)).collect();
    let mut heap_dst: Vec<(u64, u64)> = vec![(0, 0); n];
    out[CpuOp::HeapTransfer.index()] = timed_op(spec, || {
        let t = micro_loop(iters, |i| {
            let from = (i & mask) as usize;
            let to = (i.wrapping_mul(31) & mask) as usize;
            heap_dst[to] = heap_src[from];
        });
        black_box(heap_dst.as_slice());
        heap_src[0].0 = heap_dst[0].0;
        t
    });

    // Fault overhead: first touch of anonymous pages — the kernel's
    // fault-in path (trap, page allocation, page-table update), the
    // §8 residual the model prices explicitly.
    let page = spec.block_bytes as usize;
    out[CpuOp::FaultOverhead.index()] = timed_op(spec, || {
        let pages = spec.fault_pages.max(1) as usize;
        let region = SharedBuf::new(pages * page).expect("anonymous map");
        let started = Instant::now();
        for p in 0..pages {
            unsafe { region.ptr().add(p * page).write(1) };
        }
        black_box(unsafe { region.ptr().read() });
        (started.elapsed().as_secs_f64() / pages as f64).max(MIN_SECONDS)
    });

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProbeSpec {
        let mut s = ProbeSpec::quick();
        // Tiny sweeps: these tests check mechanics, not noise floors.
        s.band_sizes = vec![1, 4, 16];
        s.area_blocks = 64;
        s.reps = 2;
        s.warmup = 0;
        s.cpu_iters = 10_000;
        s.map_blocks = vec![4, 16, 64];
        s.cs_rounds = 200;
        s.fault_pages = 32;
        s.memcpy_bytes = 64 << 10;
        s
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mmjoin-cal-{}-{name}", std::process::id()))
    }

    #[test]
    fn probe_spec_validation_catches_bad_shapes() {
        let mut s = spec();
        s.band_sizes = vec![4, 4];
        assert!(s.validate().is_err());
        let mut s = spec();
        s.band_sizes = vec![1, 1024];
        s.area_blocks = 64;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.block_bytes = 1000;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.reps = 0;
        assert!(s.validate().is_err());
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn dtt_probe_produces_positive_increasing_bands() {
        let target = tmp("dtt");
        let s = spec();
        let probe = probe_dtt(&target, &s).unwrap();
        assert!(!target.exists(), "scratch file must be cleaned up");
        assert_eq!(probe.samples.len(), s.band_sizes.len());
        for (sample, &band) in probe.samples.iter().zip(&s.band_sizes) {
            assert_eq!(sample.band, band);
            assert!(sample.read > 0.0 && sample.write > 0.0);
        }
    }

    #[test]
    fn dtt_probe_reuses_and_keeps_existing_target() {
        let target = tmp("dtt-existing");
        std::fs::write(&target, vec![0u8; 64 * 4096]).unwrap();
        let s = spec();
        let probe = probe_dtt(&target, &s).unwrap();
        assert!(target.exists(), "caller-provided target must survive");
        assert_eq!(probe.samples.len(), s.band_sizes.len());
        std::fs::remove_file(&target).unwrap();
    }

    #[test]
    fn dtt_probe_rejects_undersized_target() {
        let target = tmp("dtt-small");
        std::fs::write(&target, vec![0u8; 4 * 4096]).unwrap();
        let err = probe_dtt(&target, &spec()).unwrap_err().to_string();
        assert!(err.contains("largest band"), "{err}");
        std::fs::remove_file(&target).unwrap();
    }

    #[test]
    fn map_probe_fits_positive_model() {
        let dir = tmp("mapdir");
        let probe = probe_map_costs(&dir, &spec()).unwrap();
        assert!(!dir.exists(), "map scratch dir must be cleaned up");
        assert_eq!(probe.samples.len(), 3);
        assert!(probe.model.new_map(64) > 0.0);
        assert!(probe.model.open_map(64) > 0.0);
        assert!(probe.model.delete_map(64) >= 0.0);
        for fit in probe.fits {
            assert!(fit.residual.is_finite() && fit.residual >= 0.0);
        }
    }

    #[test]
    fn memcpy_and_cpu_probes_return_positive_constants() {
        let s = spec();
        let mt = probe_memcpy(&s).unwrap();
        assert!(mt.iter().all(|&t| t > 0.0));
        // A byte moves in well under a microsecond on anything modern.
        assert!(mt.iter().all(|&t| t < 1e-6), "{mt:?}");
        let cpu = probe_cpu(&s).unwrap();
        assert!(cpu.iter().all(|&t| t > 0.0));
        // Fault-in costs more than one hash step.
        assert!(
            cpu[CpuOp::FaultOverhead.index()] > cpu[CpuOp::Hash.index()],
            "{cpu:?}"
        );
        let cs = probe_context_switch(&s).unwrap();
        assert!(cs > 0.0 && cs < 1e-2, "cs {cs}");
    }
}
