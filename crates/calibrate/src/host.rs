//! The calibration driver: run every probe, stamp provenance, return a
//! versioned [`MachineProfile`].
//!
//! Each probe is bracketed by [`TraceEvent::ProbeStart`] /
//! [`TraceEvent::ProbeEnd`] on the caller's sink, and every linear fit
//! emits a [`TraceEvent::ProbeFit`] with its coefficients and RMS
//! residual, so a calibration run leaves the same kind of structured
//! trail the joins do.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use mmjoin_env::machine::{DttCurve, MachineParams};
use mmjoin_env::{null_sink, Result, TraceEvent, TraceSink};

use crate::probes::{
    probe_context_switch, probe_cpu, probe_dtt, probe_map_costs, probe_memcpy, ProbeSpec,
};
use crate::profile::{MachineProfile, Provenance, PROFILE_VERSION};

/// Everything a calibration run needs to know.
#[derive(Clone)]
pub struct CalibrateOptions {
    /// Probe sizing (see [`ProbeSpec::quick`] / [`ProbeSpec::full`]).
    pub spec: ProbeSpec,
    /// Disk sweep target: an existing file or block device **whose
    /// contents the sweep overwrites**, or a path to create and remove.
    /// `None` uses a scratch file in the system temp directory.
    pub device: Option<PathBuf>,
    /// Recorded in provenance as the `quick` flag.
    pub quick: bool,
    /// Where probe lifecycle events go.
    pub trace: Arc<dyn TraceSink>,
}

impl CalibrateOptions {
    /// The reduced CI-sized calibration, tracing discarded.
    pub fn quick() -> Self {
        CalibrateOptions {
            spec: ProbeSpec::quick(),
            device: None,
            quick: true,
            trace: null_sink(),
        }
    }

    /// The full calibration, tracing discarded.
    pub fn full() -> Self {
        CalibrateOptions {
            spec: ProbeSpec::full(),
            device: None,
            quick: false,
            trace: null_sink(),
        }
    }
}

/// The measured machine's hostname, best-effort.
fn hostname() -> String {
    if let Ok(name) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let name = name.trim();
        if !name.is_empty() {
            return name.to_string();
        }
    }
    std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown".to_string())
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Run the full measurement suite against this host and package the
/// result as a persistable profile.
pub fn calibrate_host(opts: &CalibrateOptions) -> Result<MachineProfile> {
    let spec = &opts.spec;
    let started = Instant::now();
    let bracket = |probe: &str, run: &mut dyn FnMut() -> Result<()>| -> Result<()> {
        opts.trace.emit(
            started.elapsed().as_secs_f64(),
            TraceEvent::ProbeStart {
                probe: probe.to_string(),
                reps: spec.reps,
            },
        );
        let probe_started = Instant::now();
        run()?;
        opts.trace.emit(
            started.elapsed().as_secs_f64(),
            TraceEvent::ProbeEnd {
                probe: probe.to_string(),
                reps: spec.reps,
                seconds: probe_started.elapsed().as_secs_f64(),
            },
        );
        Ok(())
    };

    let device = opts
        .device
        .clone()
        .unwrap_or_else(|| scratch_path("dtt-scratch"));
    let mut dtt = None;
    bracket("dtt", &mut || {
        dtt = Some(probe_dtt(&device, spec)?);
        Ok(())
    })?;
    let dtt = dtt.expect("probe ran");

    let map_dir = scratch_path("map-scratch");
    let mut map = None;
    bracket("map", &mut || {
        map = Some(probe_map_costs(&map_dir, spec)?);
        Ok(())
    })?;
    let map = map.expect("probe ran");
    for (name, fit) in [
        ("map_new", &map.fits[0]),
        ("map_open", &map.fits[1]),
        ("map_delete", &map.fits[2]),
    ] {
        opts.trace.emit(
            started.elapsed().as_secs_f64(),
            TraceEvent::ProbeFit {
                fit: name.to_string(),
                base: fit.base,
                slope: fit.slope,
                residual: fit.residual,
            },
        );
    }

    let mut mt = [0.0f64; 4];
    bracket("mt", &mut || {
        mt = probe_memcpy(spec)?;
        Ok(())
    })?;
    let mut cs = 0.0f64;
    bracket("cs", &mut || {
        cs = probe_context_switch(spec)?;
        Ok(())
    })?;
    let mut cpu = [0.0f64; 6];
    bracket("cpu", &mut || {
        cpu = probe_cpu(spec)?;
        Ok(())
    })?;

    let curve = |pick: fn(&mmjoin_vmsim::DttSample) -> f64| -> Result<DttCurve> {
        DttCurve::from_points(
            dtt.samples
                .iter()
                .map(|s| (s.band as f64, pick(s)))
                .collect(),
        )
    };
    let machine = MachineParams {
        page_size: spec.block_bytes,
        cs,
        mt,
        cpu,
        dttr: curve(|s| s.read)?,
        dttw: curve(|s| s.write)?,
        map_cost: map.model,
    };
    Ok(MachineProfile {
        version: PROFILE_VERSION,
        provenance: Provenance {
            host: hostname(),
            device: device.display().to_string(),
            created_unix: now_unix(),
            direct_io: dtt.direct_io,
            quick: opts.quick,
            reps: spec.reps,
            warmup: spec.warmup,
            fit_residuals: [
                map.fits[0].residual,
                map.fits[1].residual,
                map.fits[2].residual,
            ],
        },
        machine,
    })
}

fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mmjoin-calibrate-{tag}-{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_env::CollectingSink;

    #[test]
    fn quick_calibration_produces_a_valid_traced_profile() {
        let sink = CollectingSink::new();
        let mut opts = CalibrateOptions::quick();
        // Trim the already-quick spec further: this is a mechanics test.
        opts.spec.band_sizes = vec![1, 8, 32];
        opts.spec.area_blocks = 128;
        opts.spec.reps = 2;
        opts.spec.warmup = 0;
        opts.spec.cpu_iters = 20_000;
        opts.spec.map_blocks = vec![4, 16, 64];
        opts.spec.cs_rounds = 200;
        opts.spec.fault_pages = 64;
        opts.spec.memcpy_bytes = 256 << 10;
        opts.trace = sink.clone();
        let profile = calibrate_host(&opts).unwrap();

        assert_eq!(profile.version, PROFILE_VERSION);
        assert!(profile.provenance.quick);
        assert_eq!(profile.provenance.reps, 2);
        assert!(profile.machine.cs > 0.0);
        assert!(profile.machine.mt.iter().all(|&t| t > 0.0));
        assert!(profile.machine.cpu.iter().all(|&t| t > 0.0));
        assert_eq!(profile.machine.dttr.points().len(), 3);

        // The trace must bracket all five probes and carry three fits.
        let events = sink.events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ProbeStart { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ProbeEnd { .. }))
            .count();
        let fits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ProbeFit { .. }))
            .count();
        assert_eq!((starts, ends, fits), (5, 5, 3));

        // And the profile must survive serialization bitwise.
        let back = MachineProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(back, profile);
    }
}
