//! Host calibration for mmjoin: measure the paper's §3 machine
//! parameters on the machine actually running the joins, and persist
//! them as versioned JSON machine profiles.
//!
//! The paper grounds its analytical model in measured constants — the
//! banded `dtt` disk curves of Fig. 1a, the `newMap`/`openMap`/
//! `deleteMap` lines of Fig. 1b, the `MT` memory-transfer rates, the
//! context-switch time `CS`, and per-operation CPU costs. The rest of
//! the workspace ships those constants as the `waterloo96` preset
//! digitized from the paper; this crate re-runs the *measurement
//! procedures themselves* against the host:
//!
//! * [`probes`] — the individual measurement procedures,
//! * [`fit`] — median-of-k noise control and least-squares fitting,
//! * [`host`] — [`calibrate_host`], the all-probes driver,
//! * [`profile`] — the versioned, provenance-stamped JSON profile,
//! * [`json`] — the small strict JSON reader the profile loader uses
//!   (the build environment has no `serde`).
//!
//! A persisted profile plugs straight into the model and both
//! environments via `MachineParams`, replacing the preset end to end:
//!
//! ```
//! use mmjoin_calibrate::{calibrate_host, CalibrateOptions, MachineProfile};
//!
//! let mut opts = CalibrateOptions::quick();
//! opts.spec.band_sizes = vec![1, 8];
//! opts.spec.area_blocks = 32;
//! opts.spec.cpu_iters = 1000;
//! opts.spec.cs_rounds = 50;
//! opts.spec.fault_pages = 8;
//! opts.spec.memcpy_bytes = 4096;
//! opts.spec.map_blocks = vec![1, 4, 8];
//! let profile = calibrate_host(&opts).unwrap();
//! let text = profile.to_json();
//! assert_eq!(MachineProfile::from_json(&text).unwrap(), profile);
//! ```

#![warn(missing_docs)]

pub mod fit;
pub mod host;
pub mod json;
pub mod probes;
pub mod profile;

pub use fit::{fit_linear, median, LinearFit};
pub use host::{calibrate_host, CalibrateOptions};
pub use probes::{
    probe_context_switch, probe_cpu, probe_dtt, probe_map_costs, probe_memcpy, DttProbe, MapProbe,
    ProbeSpec,
};
pub use profile::{MachineProfile, Provenance, PROFILE_FORMAT, PROFILE_VERSION};
