//! A minimal JSON reader for machine profiles.
//!
//! The build environment has no registry access, so profile
//! deserialization cannot lean on `serde`; this module implements the
//! small strict subset of JSON the profile format needs (objects,
//! arrays, strings, finite numbers, booleans, null) as a recursive
//! descent parser. Writing stays in hand-formatted strings like every
//! other JSON emitter in the workspace; only reading needs a parser.

use mmjoin_env::{EnvError, Result};

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the profile format never needs
    /// integers above 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are rejected).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup that errors with the missing key's name.
    pub fn req(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| EnvError::InvalidConfig(format!("profile: missing field '{key}'")))
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(type_err("number", other)),
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Result<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(EnvError::InvalidConfig(format!(
                "profile: expected a non-negative integer, got {n}"
            )));
        }
        Ok(n as u64)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_err("string", other)),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(type_err("boolean", other)),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(type_err("array", other)),
        }
    }
}

fn type_err(wanted: &str, got: &Json) -> EnvError {
    let kind = match got {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    };
    EnvError::InvalidConfig(format!("profile: expected a {wanted}, got a {kind}"))
}

/// Escape `s` into a JSON string literal body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> EnvError {
        EnvError::InvalidConfig(format!("profile JSON (byte {}): {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in profile
                            // strings; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("bad number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.err(&format!("non-finite number '{text}'")));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = Json::parse(
            r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\ny", "d": true, "e": null}, "f": 0}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\ny"
        );
        assert!(doc.get("b").unwrap().get("d").unwrap().as_bool().unwrap());
        assert_eq!(doc.get("f").unwrap().as_u64().unwrap(), 0);
        let n = doc.get("a").unwrap().as_arr().unwrap()[2].as_f64().unwrap();
        assert!((n + 0.03).abs() < 1e-15);
    }

    #[test]
    fn numbers_round_trip_through_display() {
        for v in [
            6.0e-3,
            0.1e-6,
            2.5e-6,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            123456789.125,
        ] {
            let doc = Json::parse(&format!("{{\"v\": {v}}}")).unwrap();
            let back = doc.get("v").unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            "{\"a\": nul}",
            "{\"a\": 1e999}",
            "{\"a\": --3}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn type_errors_name_both_sides() {
        let doc = Json::parse("{\"a\": 1}").unwrap();
        let err = doc.get("a").unwrap().as_str().unwrap_err().to_string();
        assert!(err.contains("string") && err.contains("number"), "{err}");
        let err = doc.req("zzz").unwrap_err().to_string();
        assert!(err.contains("zzz"), "{err}");
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let doc = Json::parse(&format!("{{\"v\": \"{}\"}}", escape(s))).unwrap();
        assert_eq!(doc.get("v").unwrap().as_str().unwrap(), s);
    }
}
