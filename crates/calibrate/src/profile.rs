//! Versioned on-disk machine profiles.
//!
//! A profile is a JSON document carrying a complete
//! [`MachineParams`] plus the provenance of the measurement: which
//! host and device produced it, when, under how many repetitions, and
//! how well the linear map-cost fits matched the samples. The format is
//! explicitly versioned ([`PROFILE_VERSION`]) and tagged
//! ([`PROFILE_FORMAT`]); loading rejects unknown versions and foreign
//! documents instead of guessing.
//!
//! Floats are emitted through Rust's shortest-roundtrip `Display`, so a
//! profile survives `MachineParams → JSON → MachineParams` **bitwise**
//! — a loaded profile drives the cost model to exactly the same
//! predictions as the in-memory original (a property test pins this
//! down).

use std::fmt::Write as _;
use std::path::Path;

use mmjoin_env::machine::{DttCurve, MachineParams, MapCostModel};
use mmjoin_env::{CpuOp, EnvError, MoveKind, Result};

use crate::json::{escape, Json};

/// Format marker every profile document must carry.
pub const PROFILE_FORMAT: &str = "mmjoin-machine-profile";

/// Current profile schema version. Bump on any incompatible layout
/// change; loaders reject mismatches outright.
pub const PROFILE_VERSION: u64 = 1;

/// How, where and how carefully a profile was measured.
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    /// Hostname of the measured machine.
    pub host: String,
    /// The device or scratch path the disk sweep ran against.
    pub device: String,
    /// Measurement time, seconds since the Unix epoch.
    pub created_unix: u64,
    /// Whether the disk sweep ran under `O_DIRECT`. `false` means the
    /// buffered fallback was used and the `dtt` curves largely measure
    /// the page cache, not the device.
    pub direct_io: bool,
    /// Whether this was the reduced `--quick` calibration.
    pub quick: bool,
    /// Recorded repetitions per measurement (median-of-k).
    pub reps: u32,
    /// Unrecorded warmup repetitions per measurement.
    pub warmup: u32,
    /// RMS residuals of the three Fig. 1b linear fits, in seconds:
    /// `newMap`, `openMap`, `deleteMap`.
    pub fit_residuals: [f64; 3],
}

/// A machine profile: versioned, provenance-stamped machine parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineProfile {
    /// Schema version ([`PROFILE_VERSION`] when produced by this build).
    pub version: u64,
    /// Measurement provenance.
    pub provenance: Provenance,
    /// The measured parameters, ready for the model and simulators.
    pub machine: MachineParams,
}

fn curve_json(curve: &DttCurve) -> String {
    let pts: Vec<String> = curve
        .points()
        .iter()
        .map(|(band, sec)| format!("[{band}, {sec}]"))
        .collect();
    format!("[{}]", pts.join(", "))
}

fn curve_from(value: &Json, name: &str) -> Result<DttCurve> {
    let mut points = Vec::new();
    for item in value.as_arr()? {
        let pair = item.as_arr()?;
        if pair.len() != 2 {
            return Err(EnvError::InvalidConfig(format!(
                "profile: {name} points must be [band, seconds] pairs"
            )));
        }
        points.push((pair[0].as_f64()?, pair[1].as_f64()?));
    }
    DttCurve::from_points(points)
}

fn finite_positive(v: f64, what: &str) -> Result<f64> {
    if !v.is_finite() || v <= 0.0 {
        return Err(EnvError::InvalidConfig(format!(
            "profile: {what} must be positive and finite, got {v}"
        )));
    }
    Ok(v)
}

fn finite_nonneg(v: f64, what: &str) -> Result<f64> {
    if !v.is_finite() || v < 0.0 {
        return Err(EnvError::InvalidConfig(format!(
            "profile: {what} must be non-negative and finite, got {v}"
        )));
    }
    Ok(v)
}

const MT_KEYS: [(&str, MoveKind); 4] = [
    ("pp", MoveKind::PP),
    ("ps", MoveKind::PS),
    ("sp", MoveKind::SP),
    ("ss", MoveKind::SS),
];

const CPU_KEYS: [(&str, CpuOp); 6] = [
    ("map", CpuOp::Map),
    ("hash", CpuOp::Hash),
    ("compare", CpuOp::Compare),
    ("swap", CpuOp::Swap),
    ("heap_transfer", CpuOp::HeapTransfer),
    ("fault_overhead", CpuOp::FaultOverhead),
];

impl MachineProfile {
    /// Serialize to the versioned JSON document.
    pub fn to_json(&self) -> String {
        let p = &self.provenance;
        let m = &self.machine;
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{PROFILE_FORMAT}\",");
        let _ = writeln!(out, "  \"version\": {},", self.version);
        out.push_str("  \"provenance\": {\n");
        let _ = writeln!(out, "    \"host\": \"{}\",", escape(&p.host));
        let _ = writeln!(out, "    \"device\": \"{}\",", escape(&p.device));
        let _ = writeln!(out, "    \"created_unix\": {},", p.created_unix);
        let _ = writeln!(out, "    \"direct_io\": {},", p.direct_io);
        let _ = writeln!(out, "    \"quick\": {},", p.quick);
        let _ = writeln!(out, "    \"reps\": {},", p.reps);
        let _ = writeln!(out, "    \"warmup\": {},", p.warmup);
        out.push_str("    \"fit_residuals\": {\n");
        let _ = writeln!(out, "      \"new_map\": {},", p.fit_residuals[0]);
        let _ = writeln!(out, "      \"open_map\": {},", p.fit_residuals[1]);
        let _ = writeln!(out, "      \"delete_map\": {}", p.fit_residuals[2]);
        out.push_str("    }\n  },\n");
        out.push_str("  \"machine\": {\n");
        let _ = writeln!(out, "    \"page_size\": {},", m.page_size);
        let _ = writeln!(out, "    \"cs\": {},", m.cs);
        out.push_str("    \"mt\": {");
        for (i, (key, kind)) in MT_KEYS.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{key}\": {}", m.mt[kind.index()]);
        }
        out.push_str("},\n    \"cpu\": {");
        for (i, (key, op)) in CPU_KEYS.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{key}\": {}", m.cpu[op.index()]);
        }
        out.push_str("},\n");
        let _ = writeln!(out, "    \"dttr\": {},", curve_json(&m.dttr));
        let _ = writeln!(out, "    \"dttw\": {},", curve_json(&m.dttw));
        let mc = &m.map_cost;
        out.push_str("    \"map_cost\": {\n");
        let _ = writeln!(out, "      \"new_base\": {},", mc.new_base);
        let _ = writeln!(out, "      \"new_per_block\": {},", mc.new_per_block);
        let _ = writeln!(out, "      \"open_base\": {},", mc.open_base);
        let _ = writeln!(out, "      \"open_per_block\": {},", mc.open_per_block);
        let _ = writeln!(out, "      \"delete_base\": {},", mc.delete_base);
        let _ = writeln!(out, "      \"delete_per_block\": {}", mc.delete_per_block);
        out.push_str("    }\n  }\n}\n");
        out
    }

    /// Parse and validate a profile document.
    pub fn from_json(text: &str) -> Result<MachineProfile> {
        let doc = Json::parse(text)?;
        let format = doc.req("format")?.as_str()?;
        if format != PROFILE_FORMAT {
            return Err(EnvError::InvalidConfig(format!(
                "profile: not a machine profile (format '{format}', expected '{PROFILE_FORMAT}')"
            )));
        }
        let version = doc.req("version")?.as_u64()?;
        if version != PROFILE_VERSION {
            return Err(EnvError::InvalidConfig(format!(
                "profile: unsupported version {version} (this build reads version {PROFILE_VERSION}); re-run `mmjoin calibrate`"
            )));
        }
        let prov = doc.req("provenance")?;
        let residuals = prov.req("fit_residuals")?;
        let provenance = Provenance {
            host: prov.req("host")?.as_str()?.to_string(),
            device: prov.req("device")?.as_str()?.to_string(),
            created_unix: prov.req("created_unix")?.as_u64()?,
            direct_io: prov.req("direct_io")?.as_bool()?,
            quick: prov.req("quick")?.as_bool()?,
            reps: prov.req("reps")?.as_u64()? as u32,
            warmup: prov.req("warmup")?.as_u64()? as u32,
            fit_residuals: [
                finite_nonneg(residuals.req("new_map")?.as_f64()?, "fit residual")?,
                finite_nonneg(residuals.req("open_map")?.as_f64()?, "fit residual")?,
                finite_nonneg(residuals.req("delete_map")?.as_f64()?, "fit residual")?,
            ],
        };
        let mach = doc.req("machine")?;
        let page_size = mach.req("page_size")?.as_u64()?;
        if page_size == 0 {
            return Err(EnvError::InvalidConfig(
                "profile: page_size must be positive".into(),
            ));
        }
        let mut mt = [0.0f64; 4];
        let mt_obj = mach.req("mt")?;
        for (key, kind) in MT_KEYS {
            mt[kind.index()] = finite_positive(mt_obj.req(key)?.as_f64()?, &format!("mt.{key}"))?;
        }
        let mut cpu = [0.0f64; 6];
        let cpu_obj = mach.req("cpu")?;
        for (key, op) in CPU_KEYS {
            cpu[op.index()] = finite_positive(cpu_obj.req(key)?.as_f64()?, &format!("cpu.{key}"))?;
        }
        let mc = mach.req("map_cost")?;
        let map_cost = MapCostModel {
            new_base: finite_nonneg(mc.req("new_base")?.as_f64()?, "map_cost.new_base")?,
            new_per_block: finite_nonneg(
                mc.req("new_per_block")?.as_f64()?,
                "map_cost.new_per_block",
            )?,
            open_base: finite_nonneg(mc.req("open_base")?.as_f64()?, "map_cost.open_base")?,
            open_per_block: finite_nonneg(
                mc.req("open_per_block")?.as_f64()?,
                "map_cost.open_per_block",
            )?,
            delete_base: finite_nonneg(mc.req("delete_base")?.as_f64()?, "map_cost.delete_base")?,
            delete_per_block: finite_nonneg(
                mc.req("delete_per_block")?.as_f64()?,
                "map_cost.delete_per_block",
            )?,
        };
        let machine = MachineParams {
            page_size,
            cs: finite_positive(mach.req("cs")?.as_f64()?, "cs")?,
            mt,
            cpu,
            dttr: curve_from(mach.req("dttr")?, "dttr")?,
            dttw: curve_from(mach.req("dttw")?, "dttw")?,
            map_cost,
        };
        Ok(MachineProfile {
            version,
            provenance,
            machine,
        })
    }

    /// Write the profile to `path` (parent directories created).
    pub fn save(&self, path: &Path) -> Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Read and validate a profile from `path`, naming the file in any
    /// error.
    pub fn load(path: &Path) -> Result<MachineProfile> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            EnvError::InvalidConfig(format!("cannot read profile {}: {e}", path.display()))
        })?;
        Self::from_json(&text)
            .map_err(|e| EnvError::InvalidConfig(format!("{}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> MachineProfile {
        MachineProfile {
            version: PROFILE_VERSION,
            provenance: Provenance {
                host: "testhost".into(),
                device: "/tmp/scratch".into(),
                created_unix: 1_700_000_000,
                direct_io: false,
                quick: true,
                reps: 3,
                warmup: 1,
                fit_residuals: [1.5e-4, 2.0e-5, 0.0],
            },
            machine: MachineParams::waterloo96(),
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let profile = sample();
        let back = MachineProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn save_and_load_round_trip() {
        let path = std::env::temp_dir().join(format!("mmjoin-profile-{}.json", std::process::id()));
        let profile = sample();
        profile.save(&path).unwrap();
        let back = MachineProfile::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn version_and_format_mismatches_are_rejected() {
        let good = sample().to_json();
        let wrong_version = good.replace("\"version\": 1,", "\"version\": 99,");
        let err = MachineProfile::from_json(&wrong_version)
            .unwrap_err()
            .to_string();
        assert!(err.contains("version 99"), "{err}");
        let wrong_format = good.replace(PROFILE_FORMAT, "something-else");
        let err = MachineProfile::from_json(&wrong_format)
            .unwrap_err()
            .to_string();
        assert!(err.contains("not a machine profile"), "{err}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let good = sample().to_json();
        for (needle, replacement) in [
            ("\"cs\": 0.00006,", "\"cs\": 0,"),
            ("\"cs\": 0.00006,", "\"cs\": -1,"),
            ("\"page_size\": 4096,", "\"page_size\": 0,"),
            ("\"hash\": 0.000004", "\"hash\": 0"),
            ("\"new_base\": 0.05,", "\"new_base\": -0.05,"),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "replacement '{needle}' did not apply");
            assert!(
                MachineProfile::from_json(&bad).is_err(),
                "accepted: {replacement}"
            );
        }
        // Non-increasing dtt bands.
        let bad = good.replace("[200, 0.009]", "[1, 0.009]");
        assert!(MachineProfile::from_json(&bad).is_err());
    }

    #[test]
    fn load_errors_name_the_file() {
        let missing = std::path::Path::new("/nonexistent/profile.json");
        let err = MachineProfile::load(missing).unwrap_err().to_string();
        assert!(err.contains("/nonexistent/profile.json"), "{err}");
    }
}
