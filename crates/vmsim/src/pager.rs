//! Per-process virtual-memory pager.
//!
//! Each simulated process owns a pager with a fixed page budget
//! (`M_Rproc_i` / `M_Sproc_i` in the paper, expressed in pages). The
//! pager decides hits, faults and evictions; the environment prices the
//! resulting disk traffic.
//!
//! The default policy is strict LRU, matching the paper's analysis
//! (which uses the Mackert–Lohman LRU model and discusses at length how
//! "the LRU paging scheme makes the wrong decisions" during merge passes
//! — §6.2, §7.2). FIFO and second-chance variants are provided for the
//! replacement-policy ablation, since the paper attributes part of its
//! residual error to Dynix's "simple page replacement algorithm" (§8).

use std::collections::HashMap;

/// Identity of one page: which file, which page within it.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct PageKey {
    /// Environment-level file index.
    pub file: u32,
    /// Page number within the file.
    pub page: u64,
}

/// Page replacement policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Policy {
    /// Strict least-recently-used.
    #[default]
    Lru,
    /// First-in first-out (no use-based promotion).
    Fifo,
    /// Clock / second-chance: FIFO order with one reprieve for
    /// referenced pages.
    SecondChance,
}

/// A page pushed out of memory.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// Which page was evicted.
    pub key: PageKey,
    /// Whether it was dirty (must be written back).
    pub dirty: bool,
}

/// Outcome of touching one page.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Access {
    /// The page was resident.
    Hit,
    /// The page was not resident; it is now, possibly at the cost of an
    /// eviction.
    Fault {
        /// The page evicted to make room, if the budget was full.
        evicted: Option<Eviction>,
    },
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Slot {
    key: PageKey,
    dirty: bool,
    referenced: bool,
    prev: u32,
    next: u32,
}

/// Fixed-budget pager with an intrusive recency list.
///
/// List order: head = most recently inserted/used, tail = eviction
/// candidate. LRU promotes on hit; FIFO and second-chance do not (the
/// latter sets a reference bit instead).
///
/// ```
/// use mmjoin_vmsim::{Access, PageKey, Pager, Policy};
/// let mut pager = Pager::new(2, Policy::Lru);
/// let page = |p| PageKey { file: 0, page: p };
/// assert!(matches!(pager.touch(page(1), false), Access::Fault { evicted: None }));
/// assert!(matches!(pager.touch(page(2), true), Access::Fault { evicted: None }));
/// assert_eq!(pager.touch(page(1), false), Access::Hit);
/// // Page 2 is now least-recent — and dirty when evicted.
/// match pager.touch(page(3), false) {
///     Access::Fault { evicted: Some(ev) } => assert!(ev.dirty && ev.key == page(2)),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Pager {
    budget: usize,
    policy: Policy,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    map: HashMap<PageKey, u32>,
    hits: u64,
    faults: u64,
}

impl Pager {
    /// A pager holding at most `budget_pages` pages (minimum 1) under
    /// `policy`.
    pub fn new(budget_pages: usize, policy: Policy) -> Self {
        let budget = budget_pages.max(1);
        Pager {
            budget,
            policy,
            slots: Vec::with_capacity(budget.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            map: HashMap::new(),
            hits: 0,
            faults: 0,
        }
    }

    /// Configured budget in pages.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// True if `key` is resident (does not affect recency).
    pub fn is_resident(&self, key: PageKey) -> bool {
        self.map.contains_key(&key)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_head(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn alloc_slot(&mut self, key: PageKey, dirty: bool) -> u32 {
        let slot = Slot {
            key,
            dirty,
            referenced: false,
            prev: NIL,
            next: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = slot;
            idx
        } else {
            self.slots.push(slot);
            (self.slots.len() - 1) as u32
        }
    }

    /// Choose and remove the victim slot according to the policy.
    fn evict_one(&mut self) -> Eviction {
        debug_assert!(self.tail != NIL, "evicting from an empty pager");
        let victim = match self.policy {
            Policy::Lru | Policy::Fifo => self.tail,
            Policy::SecondChance => {
                // Sweep from the tail; referenced pages get one reprieve
                // (cleared and moved to the head). Terminates because
                // every page's bit is cleared at most once per sweep.
                let mut idx = self.tail;
                loop {
                    if self.slots[idx as usize].referenced {
                        self.slots[idx as usize].referenced = false;
                        let next_candidate = self.slots[idx as usize].prev;
                        self.unlink(idx);
                        self.push_head(idx);
                        idx = if next_candidate != NIL {
                            next_candidate
                        } else {
                            self.tail
                        };
                    } else {
                        break idx;
                    }
                }
            }
        };
        self.unlink(victim);
        let slot = &self.slots[victim as usize];
        let ev = Eviction {
            key: slot.key,
            dirty: slot.dirty,
        };
        self.map.remove(&ev.key);
        self.free.push(victim);
        ev
    }

    /// Touch one page; `dirty` marks it modified. Returns whether the
    /// access hit, and on a fault, which page (if any) was evicted.
    pub fn touch(&mut self, key: PageKey, dirty: bool) -> Access {
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            {
                let s = &mut self.slots[idx as usize];
                s.dirty |= dirty;
                s.referenced = true;
            }
            if self.policy == Policy::Lru {
                self.unlink(idx);
                self.push_head(idx);
            }
            return Access::Hit;
        }
        self.faults += 1;
        let evicted = if self.map.len() >= self.budget {
            Some(self.evict_one())
        } else {
            None
        };
        let idx = self.alloc_slot(key, dirty);
        self.map.insert(key, idx);
        self.push_head(idx);
        Access::Fault { evicted }
    }

    /// Discard every resident page of `file` without write-back (the
    /// file's data is being destroyed, as in `deleteMap`). Returns the
    /// discarded pages.
    pub fn drop_file(&mut self, file: u32) -> Vec<PageKey> {
        let victims: Vec<(PageKey, u32)> = self
            .map
            .iter()
            .filter(|(k, _)| k.file == file)
            .map(|(k, &v)| (*k, v))
            .collect();
        let mut dropped = Vec::with_capacity(victims.len());
        for (key, idx) in victims {
            self.unlink(idx);
            self.map.remove(&key);
            self.free.push(idx);
            dropped.push(key);
        }
        dropped
    }

    /// Mark every resident dirty page clean and return their keys (an
    /// explicit sync).
    pub fn take_dirty(&mut self) -> Vec<PageKey> {
        let mut dirty = Vec::new();
        for (&key, &idx) in &self.map {
            if self.slots[idx as usize].dirty {
                dirty.push(key);
            }
        }
        for key in &dirty {
            let idx = self.map[key];
            self.slots[idx as usize].dirty = false;
        }
        dirty.sort_unstable_by_key(|k| (k.file, k.page));
        dirty
    }

    /// Resident pages in recency order, most recent first (test/debug
    /// aid).
    pub fn recency_order(&self) -> Vec<PageKey> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            out.push(self.slots[idx as usize].key);
            idx = self.slots[idx as usize].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(page: u64) -> PageKey {
        PageKey { file: 0, page }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = Pager::new(2, Policy::Lru);
        assert!(matches!(
            p.touch(k(1), false),
            Access::Fault { evicted: None }
        ));
        assert!(matches!(
            p.touch(k(2), false),
            Access::Fault { evicted: None }
        ));
        assert_eq!(p.touch(k(1), false), Access::Hit); // 1 now MRU
        match p.touch(k(3), false) {
            Access::Fault { evicted: Some(ev) } => assert_eq!(ev.key, k(2)),
            other => panic!("expected eviction of page 2, got {other:?}"),
        }
        assert!(p.is_resident(k(1)) && p.is_resident(k(3)) && !p.is_resident(k(2)));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = Pager::new(2, Policy::Fifo);
        p.touch(k(1), false);
        p.touch(k(2), false);
        p.touch(k(1), false); // hit, but FIFO does not promote
        match p.touch(k(3), false) {
            Access::Fault { evicted: Some(ev) } => assert_eq!(ev.key, k(1)),
            other => panic!("expected eviction of page 1, got {other:?}"),
        }
    }

    #[test]
    fn second_chance_gives_one_reprieve() {
        let mut p = Pager::new(2, Policy::SecondChance);
        p.touch(k(1), false);
        p.touch(k(2), false);
        p.touch(k(1), false); // sets 1's reference bit
                              // Victim sweep: tail is 1 (referenced → reprieved), then 2.
        match p.touch(k(3), false) {
            Access::Fault { evicted: Some(ev) } => assert_eq!(ev.key, k(2)),
            other => panic!("expected eviction of page 2, got {other:?}"),
        }
        assert!(p.is_resident(k(1)));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut p = Pager::new(1, Policy::Lru);
        p.touch(k(1), true);
        match p.touch(k(2), false) {
            Access::Fault { evicted: Some(ev) } => {
                assert_eq!(ev.key, k(1));
                assert!(ev.dirty);
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        // Re-read page 1 clean: eviction of it must now be clean.
        p.touch(k(1), false);
        match p.touch(k(3), false) {
            Access::Fault { evicted: Some(ev) } => {
                assert_eq!(ev.key, k(1));
                assert!(!ev.dirty);
            }
            other => panic!("expected clean eviction, got {other:?}"),
        }
    }

    #[test]
    fn hit_with_dirty_marks_page_dirty() {
        let mut p = Pager::new(1, Policy::Lru);
        p.touch(k(1), false);
        assert_eq!(p.touch(k(1), true), Access::Hit);
        match p.touch(k(2), false) {
            Access::Fault { evicted: Some(ev) } => assert!(ev.dirty),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn drop_file_discards_without_writeback() {
        let mut p = Pager::new(8, Policy::Lru);
        p.touch(PageKey { file: 1, page: 0 }, true);
        p.touch(PageKey { file: 1, page: 1 }, true);
        p.touch(PageKey { file: 2, page: 0 }, true);
        let dropped = p.drop_file(1);
        assert_eq!(dropped.len(), 2);
        assert_eq!(p.resident(), 1);
        assert!(p.is_resident(PageKey { file: 2, page: 0 }));
    }

    #[test]
    fn take_dirty_cleans_pages() {
        let mut p = Pager::new(4, Policy::Lru);
        p.touch(k(1), true);
        p.touch(k(2), false);
        p.touch(k(3), true);
        let d = p.take_dirty();
        assert_eq!(d, vec![k(1), k(3)]);
        assert!(p.take_dirty().is_empty());
    }

    #[test]
    fn budget_is_respected() {
        let mut p = Pager::new(3, Policy::Lru);
        for i in 0..100 {
            p.touch(k(i), i % 2 == 0);
            assert!(p.resident() <= 3);
        }
        assert_eq!(p.resident(), 3);
        assert_eq!(p.faults(), 100);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn zero_budget_is_clamped_to_one() {
        let mut p = Pager::new(0, Policy::Lru);
        assert!(matches!(p.touch(k(1), false), Access::Fault { .. }));
        assert_eq!(p.touch(k(1), false), Access::Hit);
        assert_eq!(p.budget(), 1);
    }

    /// Reference model: a Vec ordered most-recent-first.
    struct RefLru {
        budget: usize,
        pages: Vec<(PageKey, bool)>,
    }

    impl RefLru {
        fn touch(&mut self, key: PageKey, dirty: bool) -> (bool, Option<(PageKey, bool)>) {
            if let Some(pos) = self.pages.iter().position(|(k, _)| *k == key) {
                let (k, d) = self.pages.remove(pos);
                self.pages.insert(0, (k, d || dirty));
                return (true, None);
            }
            let evicted = if self.pages.len() >= self.budget {
                self.pages.pop()
            } else {
                None
            };
            self.pages.insert(0, (key, dirty));
            (false, evicted)
        }
    }

    proptest::proptest! {
        #[test]
        fn lru_matches_reference_model(
            budget in 1usize..16,
            accesses in proptest::collection::vec((0u64..32, proptest::bool::ANY), 0..400),
        ) {
            let mut p = Pager::new(budget, Policy::Lru);
            let mut r = RefLru { budget, pages: Vec::new() };
            for (page, dirty) in accesses {
                let got = p.touch(k(page), dirty);
                let (hit, evicted) = r.touch(k(page), dirty);
                match got {
                    Access::Hit => proptest::prop_assert!(hit),
                    Access::Fault { evicted: got_ev } => {
                        proptest::prop_assert!(!hit);
                        match (got_ev, evicted) {
                            (None, None) => {}
                            (Some(ge), Some((rk, rd))) => {
                                proptest::prop_assert_eq!(ge.key, rk);
                                proptest::prop_assert_eq!(ge.dirty, rd);
                            }
                            other => proptest::prop_assert!(false, "mismatch: {:?}", other),
                        }
                    }
                }
                proptest::prop_assert_eq!(p.resident(), r.pages.len());
            }
            // Final recency order must agree.
            let order: Vec<PageKey> = r.pages.iter().map(|(key, _)| *key).collect();
            proptest::prop_assert_eq!(p.recency_order(), order);
        }
    }
}
