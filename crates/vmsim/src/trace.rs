//! Disk access tracing and band-assumption analysis.
//!
//! The paper's model prices every I/O in a pass at `dtt(BandSize)` —
//! the average cost of *uniformly random* access within the band the
//! pass touches (§3.1: "all dtt costs are for random I/O"). Whether a
//! real execution actually behaves like random-in-band is an empirical
//! question, and precisely where our model-vs-experiment residual comes
//! from. With `SimConfig::trace = true`, the simulated environment
//! records every disk access; this module computes, per disk:
//!
//! * the empirical mean/percentile service times, directly comparable
//!   to `dttr(band)`;
//! * the *effective band*: for uniform random access within a span `W`,
//!   the mean absolute arm jump is `W/3`, so `3 × mean|jump|` estimates
//!   the span the access pattern behaves as if it had;
//! * the spatial span actually touched.
//!
//! The `trace_stats` experiment binary uses this to show that pass-0/1
//! access is far more structured than the model assumes — the measured
//! effective band is a fraction of the areas' total span.

/// What kind of disk operation an event records.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Synchronous read caused by a page fault.
    Read,
    /// Deferred write-back leaving the elevator queue.
    Write,
}

/// One traced disk access.
#[derive(Copy, Clone, Debug)]
pub struct TraceEvent {
    /// Which disk.
    pub disk: u32,
    /// Which process was charged.
    pub proc: u32,
    /// Absolute block number on the disk.
    pub block: u64,
    /// Operation kind.
    pub kind: TraceKind,
    /// Service seconds charged for this block.
    pub service: f64,
}

/// Aggregate statistics for one disk's trace.
#[derive(Clone, Debug)]
pub struct DiskTraceStats {
    /// Disk id.
    pub disk: u32,
    /// Read events.
    pub reads: u64,
    /// Write events.
    pub writes: u64,
    /// Mean read service (seconds/block).
    pub mean_read: f64,
    /// Mean write service.
    pub mean_write: f64,
    /// Mean absolute jump (blocks) between consecutive accesses.
    pub mean_jump: f64,
    /// `3 × mean_jump`: the band size the pattern *behaves* like.
    pub effective_band: f64,
    /// Blocks actually spanned (max − min + 1).
    pub touched_span: u64,
}

/// Summarize a trace per disk. Events must be in emission order (the
/// environment records them that way).
pub fn analyze(events: &[TraceEvent]) -> Vec<DiskTraceStats> {
    let max_disk = match events.iter().map(|e| e.disk).max() {
        Some(d) => d,
        None => return Vec::new(),
    };
    (0..=max_disk)
        .filter_map(|disk| {
            let ev: Vec<&TraceEvent> = events.iter().filter(|e| e.disk == disk).collect();
            if ev.is_empty() {
                return None;
            }
            let reads: Vec<&&TraceEvent> =
                ev.iter().filter(|e| e.kind == TraceKind::Read).collect();
            let writes: Vec<&&TraceEvent> =
                ev.iter().filter(|e| e.kind == TraceKind::Write).collect();
            let mean = |xs: &[&&TraceEvent]| {
                if xs.is_empty() {
                    0.0
                } else {
                    xs.iter().map(|e| e.service).sum::<f64>() / xs.len() as f64
                }
            };
            let jumps: Vec<f64> = ev
                .windows(2)
                .map(|w| w[0].block.abs_diff(w[1].block) as f64)
                .collect();
            let mean_jump = if jumps.is_empty() {
                0.0
            } else {
                jumps.iter().sum::<f64>() / jumps.len() as f64
            };
            let lo = ev.iter().map(|e| e.block).min().expect("non-empty");
            let hi = ev.iter().map(|e| e.block).max().expect("non-empty");
            Some(DiskTraceStats {
                disk,
                reads: reads.len() as u64,
                writes: writes.len() as u64,
                mean_read: mean(&reads),
                mean_write: mean(&writes),
                mean_jump,
                effective_band: 3.0 * mean_jump,
                touched_span: hi - lo + 1,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(disk: u32, block: u64, kind: TraceKind, service: f64) -> TraceEvent {
        TraceEvent {
            disk,
            proc: 0,
            block,
            kind,
            service,
        }
    }

    #[test]
    fn empty_trace_analyzes_to_nothing() {
        assert!(analyze(&[]).is_empty());
    }

    #[test]
    fn sequential_trace_has_tiny_effective_band() {
        let events: Vec<TraceEvent> = (0..100).map(|b| ev(0, b, TraceKind::Read, 5e-3)).collect();
        let stats = analyze(&events);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.reads, 100);
        assert_eq!(s.touched_span, 100);
        assert!((s.mean_jump - 1.0).abs() < 1e-9);
        assert!((s.effective_band - 3.0).abs() < 1e-9);
        assert!((s.mean_read - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn random_trace_effective_band_estimates_span() {
        // Uniform random blocks in [0, 3000): mean jump ≈ 1000, so the
        // effective band estimator should land near 3000.
        let mut x = 88172645463325252u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 3000
        };
        let events: Vec<TraceEvent> = (0..20_000)
            .map(|_| ev(1, next(), TraceKind::Read, 1e-3))
            .collect();
        let s = &analyze(&events)[0];
        assert_eq!(s.disk, 1);
        assert!(
            (s.effective_band - 3000.0).abs() / 3000.0 < 0.1,
            "effective band {} should be near 3000",
            s.effective_band
        );
    }

    #[test]
    fn reads_and_writes_are_separated() {
        let events = vec![
            ev(0, 0, TraceKind::Read, 10e-3),
            ev(0, 1, TraceKind::Write, 2e-3),
            ev(0, 2, TraceKind::Write, 4e-3),
        ];
        let s = &analyze(&events)[0];
        assert_eq!((s.reads, s.writes), (1, 2));
        assert!((s.mean_read - 10e-3).abs() < 1e-12);
        assert!((s.mean_write - 3e-3).abs() < 1e-12);
    }
}
