//! A mechanistic model of one disk drive, circa the paper's test bed
//! (Fujitsu M2344K/M2372K-class drives behind one controller).
//!
//! The paper does not model disk geometry directly — it *measures* the
//! per-block transfer time as a function of the band size over which
//! random accesses occur (Fig. 1a) and interpolates. We go one level
//! deeper: this module simulates seek, rotation, per-I/O overhead and
//! deferred write-behind with elevator scheduling, and the calibration
//! harness ([`crate::calibrate`]) then *measures* `dttr`/`dttw` curves
//! from it using exactly the paper's procedure. The measured curves feed
//! the analytical model, while the execution-driven simulator charges
//! the mechanistic costs directly — reproducing the paper's separation
//! between model and experiment.
//!
//! Two properties of Fig. 1a emerge rather than being hand-set:
//!
//! * per-block time grows with band size (longer seeks dominate);
//! * writes are cheaper than reads, because "writing dirty pages can be
//!   deferred allowing for the possibility of parallel I/O and
//!   optimization using shortest seek-time scheduling algorithms" (§3.1)
//!   — modelled by a write-behind queue flushed in elevator order.

/// Geometry and timing parameters of the simulated drive.
#[derive(Clone, Debug)]
pub struct DiskParams {
    /// Block (page) size in bytes; the paper's experiments use 4 KB.
    pub block_size: u64,
    /// Blocks per track.
    pub blocks_per_track: u64,
    /// Tracks per cylinder (number of recording surfaces).
    pub tracks_per_cyl: u64,
    /// Total cylinders.
    pub cylinders: u64,
    /// Platter rotation speed, revolutions per minute.
    pub rpm: f64,
    /// Arm settle time for the shortest possible seek, seconds.
    pub seek_min: f64,
    /// Seek-time coefficient: `seek(d) = seek_min + seek_factor·√d` for a
    /// `d`-cylinder move (the classic square-root seek curve).
    pub seek_factor: f64,
    /// Fixed per-read overhead (file system, fault handling, controller),
    /// seconds.
    pub read_overhead: f64,
    /// Fixed per-write overhead; smaller than reads because completion is
    /// asynchronous.
    pub write_overhead: f64,
    /// Write-behind queue depth: dirty blocks accumulate until this many
    /// are pending, then flush in elevator order.
    pub write_queue: usize,
}

impl DiskParams {
    /// Parameters calibrated so the measured `dttr`/`dttw` curves land in
    /// the range of the paper's Fig. 1a (≈6 ms/block sequential read
    /// rising toward ≈20 ms at a 12 800-block band; writes ≈2/3 of
    /// reads).
    pub fn waterloo96() -> Self {
        DiskParams {
            block_size: 4096,
            blocks_per_track: 8,
            tracks_per_cyl: 12,
            cylinders: 4096,
            rpm: 3600.0,
            seek_min: 3.0e-3,
            seek_factor: 1.0e-3,
            read_overhead: 3.4e-3,
            write_overhead: 1.2e-3,
            write_queue: 4,
        }
    }

    /// A flat-cost device in the style of a 2000s-era SSD: no seek, no
    /// rotation, small fixed per-op overhead. Used by the `ssd`
    /// experiment to ask whether the paper's algorithmic distinctions
    /// survive once random access stops being expensive — geometry
    /// fields keep their meaning for addressing, but motion is free.
    pub fn flat_ssd() -> Self {
        DiskParams {
            block_size: 4096,
            blocks_per_track: 8,
            tracks_per_cyl: 12,
            cylinders: 4096,
            rpm: f64::INFINITY, // revolution() == 0: no rotation
            seek_min: 0.0,
            seek_factor: 0.0,
            read_overhead: 0.10e-3,
            write_overhead: 0.05e-3,
            write_queue: 4,
        }
    }

    /// Blocks per cylinder.
    pub fn blocks_per_cyl(&self) -> u64 {
        self.blocks_per_track * self.tracks_per_cyl
    }

    /// Total capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.blocks_per_cyl() * self.cylinders
    }

    /// Seconds per full platter revolution (zero for a non-rotating
    /// device).
    pub fn revolution(&self) -> f64 {
        if self.rpm.is_finite() {
            60.0 / self.rpm
        } else {
            0.0
        }
    }

    /// Seconds to transfer one block once the head is on it. A
    /// non-rotating device transfers at a fixed per-block rate instead.
    pub fn transfer_time(&self) -> f64 {
        if self.rpm.is_finite() {
            self.revolution() / self.blocks_per_track as f64
        } else {
            // ~40 MB/s early-SSD class: 0.1 ms per 4 KB block.
            0.1e-3
        }
    }

    /// Seek time for a move of `d` cylinders.
    pub fn seek(&self, d: u64) -> f64 {
        if d == 0 {
            0.0
        } else {
            self.seek_min + self.seek_factor * (d as f64).sqrt()
        }
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        Self::waterloo96()
    }
}

/// Aggregate I/O counters for one disk.
#[derive(Clone, Debug, Default)]
pub struct DiskStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written (flushed from the write-behind queue).
    pub writes: u64,
    /// Seconds spent in read service.
    pub read_time: f64,
    /// Seconds spent in write service.
    pub write_time: f64,
    /// Number of elevator flushes.
    pub flushes: u64,
}

/// One simulated drive. Not thread-safe by itself; the simulated
/// environment serializes access per disk.
#[derive(Clone, Debug)]
pub struct Disk {
    params: DiskParams,
    /// Current arm cylinder.
    arm_cyl: u64,
    /// Current rotational position, as a sector index in `0..blocks_per_track`.
    rot_sector: u64,
    /// Pending deferred writes (block numbers).
    write_queue: Vec<u64>,
    stats: DiskStats,
}

impl Disk {
    /// A disk at rest at cylinder 0.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            arm_cyl: 0,
            rot_sector: 0,
            write_queue: Vec::new(),
            stats: DiskStats::default(),
        }
    }

    /// The drive's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Counters so far.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    fn service(&mut self, block: u64, overhead: f64) -> f64 {
        let p = &self.params;
        let cyl = block / p.blocks_per_cyl();
        let sector = block % p.blocks_per_track;
        let moved = cyl != self.arm_cyl;
        let seek = p.seek(self.arm_cyl.abs_diff(cyl));
        // Rotational delay. Within a cylinder the head's angular
        // position is tracked exactly, so a purely sequential access
        // (next sector) costs zero. A seek de-phases the platter —
        // arrival rotational position is effectively random — so any
        // cylinder change pays the expected half revolution.
        let rot = if moved {
            p.revolution() / 2.0
        } else {
            let gap = (sector + p.blocks_per_track - self.rot_sector) % p.blocks_per_track;
            gap as f64 / p.blocks_per_track as f64 * p.revolution()
        };
        let t = overhead + seek + rot + p.transfer_time();
        self.arm_cyl = cyl;
        self.rot_sector = (sector + 1) % p.blocks_per_track;
        t
    }

    /// Synchronously read one block; returns the service time in
    /// seconds. "A read page fault must cause an immediate I/O
    /// operation" (§3.1), so reads are never deferred.
    pub fn read(&mut self, block: u64) -> f64 {
        let t = self.service(block, self.params.read_overhead);
        self.stats.reads += 1;
        self.stats.read_time += t;
        t
    }

    /// Queue one dirty block for deferred write-back. Returns the
    /// service time *charged now*: zero while the queue fills, and the
    /// whole elevator batch when the queue reaches capacity.
    pub fn write(&mut self, block: u64) -> f64 {
        self.write_queue.push(block);
        if self.write_queue.len() >= self.params.write_queue {
            self.flush()
        } else {
            0.0
        }
    }

    /// Flush all pending writes in elevator (ascending-block from the
    /// current arm position, then the remainder) order; returns total
    /// service time.
    pub fn flush(&mut self) -> f64 {
        if self.write_queue.is_empty() {
            return 0.0;
        }
        let mut queue = std::mem::take(&mut self.write_queue);
        queue.sort_unstable();
        // Elevator: sweep upward from the arm, wrap to the lowest block.
        let arm_block = self.arm_cyl * self.params.blocks_per_cyl();
        let split = queue.partition_point(|&b| b < arm_block);
        queue.rotate_left(split);
        let mut total = 0.0;
        for &b in &queue {
            let t = self.service(b, self.params.write_overhead);
            self.stats.writes += 1;
            self.stats.write_time += t;
            total += t;
        }
        self.stats.flushes += 1;
        total
    }

    /// Pending deferred writes.
    pub fn queued_writes(&self) -> usize {
        self.write_queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::waterloo96())
    }

    #[test]
    fn sequential_reads_are_cheapest() {
        let mut d = disk();
        // Prime position.
        d.read(0);
        let seq = d.read(1);
        let mut d2 = disk();
        d2.read(0);
        let far = d2.read(100_000);
        assert!(
            seq < far,
            "sequential {seq} should be cheaper than far seek {far}"
        );
        // Sequential read = overhead + transfer only.
        let p = DiskParams::waterloo96();
        assert!((seq - (p.read_overhead + p.transfer_time())).abs() < 1e-12);
    }

    #[test]
    fn seek_grows_with_distance() {
        let p = DiskParams::waterloo96();
        assert_eq!(p.seek(0), 0.0);
        assert!(p.seek(1) < p.seek(100));
        assert!(p.seek(100) < p.seek(4000));
    }

    #[test]
    fn writes_defer_until_queue_full() {
        let mut d = disk();
        let q = d.params().write_queue;
        let mut charged = 0.0;
        for i in 0..q - 1 {
            charged += d.write((i * 50) as u64);
        }
        assert_eq!(charged, 0.0);
        assert_eq!(d.queued_writes(), q - 1);
        let batch = d.write(((q - 1) * 50) as u64);
        assert!(batch > 0.0);
        assert_eq!(d.queued_writes(), 0);
        assert_eq!(d.stats().writes as usize, q);
    }

    #[test]
    fn elevator_batch_beats_immediate_random_writes() {
        // The same random blocks written through the queue must cost
        // less than reading them (reads = immediate random service with
        // larger overhead). This is Fig. 1a's dttw < dttr.
        let blocks: Vec<u64> = (0..64u64).map(|i| (i * 7919) % 12800).collect();
        let mut wd = disk();
        let mut wt = 0.0;
        for &b in &blocks {
            wt += wd.write(b);
        }
        wt += wd.flush();
        let mut rd = disk();
        let mut rt = 0.0;
        for &b in &blocks {
            rt += rd.read(b);
        }
        assert!(
            wt < rt,
            "deferred writes {wt} should beat immediate reads {rt}"
        );
    }

    #[test]
    fn flush_on_empty_queue_is_free() {
        let mut d = disk();
        assert_eq!(d.flush(), 0.0);
        assert_eq!(d.stats().flushes, 0);
    }

    #[test]
    fn stats_track_reads_and_time() {
        let mut d = disk();
        let t0 = d.read(10);
        let t1 = d.read(5000);
        assert_eq!(d.stats().reads, 2);
        assert!((d.stats().read_time - (t0 + t1)).abs() < 1e-12);
    }

    proptest::proptest! {
        /// Physical sanity over arbitrary access patterns: every service
        /// time is bounded below by overhead + transfer and above by
        /// overhead + max seek + full rotation + transfer.
        #[test]
        fn service_times_are_physically_bounded(
            blocks in proptest::collection::vec(0u64..200_000, 1..200)
        ) {
            let p = DiskParams::waterloo96();
            let lo = p.read_overhead + p.transfer_time();
            let hi = p.read_overhead
                + p.seek(p.cylinders)
                + p.revolution()
                + p.transfer_time();
            let mut d = Disk::new(p);
            for &b in &blocks {
                let t = d.read(b % d.params().capacity_blocks());
                proptest::prop_assert!(t >= lo - 1e-12 && t <= hi + 1e-12, "t={t}");
            }
        }

        /// The elevator never loses writes, and a deferred batch is
        /// near-optimal: adversarial rotational phasing can cost a few
        /// percent versus a specific arrival order, but never more.
        #[test]
        fn elevator_batch_is_near_optimal(
            blocks in proptest::collection::vec(0u64..50_000, 1..100)
        ) {
            let p = DiskParams::waterloo96();
            let mut deferred = Disk::new(p.clone());
            let mut total_deferred = 0.0;
            for &b in &blocks {
                total_deferred += deferred.write(b);
            }
            total_deferred += deferred.flush();
            proptest::prop_assert_eq!(deferred.stats().writes as usize, blocks.len());

            let mut immediate = Disk::new(p.clone());
            let mut total_immediate = 0.0;
            for &b in &blocks {
                immediate.write(b);
                total_immediate += immediate.flush(); // force order
            }
            proptest::prop_assert!(
                total_deferred <= total_immediate * 1.25 + 1e-9,
                "deferred {total_deferred} far exceeds immediate {total_immediate}"
            );
        }
    }
}
