//! Measurement of the `dttr`/`dttw` curves from the simulated disk,
//! using the paper's own procedure (§3.1, Fig. 1a):
//!
//! > "This clustering is modelled by measuring the average cost (per
//! > block) of sequentially accessing bands in which random access
//! > occurs, over a large area of disk."
//!
//! For each band size `W`, a large disk area is tiled into consecutive
//! bands of `W` blocks; within each band every block is touched exactly
//! once in random order (the paper's "no duplicates"); bands are visited
//! in sequence. The average time per block, as a function of `W`, is the
//! measured curve. Band size 1 degenerates to a sequential scan.
//!
//! The resulting [`DttCurve`]s are what the analytical model interpolates
//! — so the model and the execution-driven simulator are tied to the
//! same underlying drive, exactly as the paper tied its model to the
//! measured Fujitsu drives.

use mmjoin_env::machine::DttCurve;
use mmjoin_env::Result;

use crate::disk::{Disk, DiskParams};

/// Deterministic 64-bit mixer (splitmix64), used so calibration needs no
/// external RNG dependency and is exactly reproducible.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0), via rejection-free
    /// multiply-shift (adequate bias for calibration purposes).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Calibration controls.
#[derive(Clone, Debug)]
pub struct CalibrationSpec {
    /// Band sizes (in blocks) to measure; the paper's Fig. 1a spans
    /// 1..12800.
    pub band_sizes: Vec<u64>,
    /// Size of the disk area swept for each band size, in blocks. "The
    /// size of the disk area is irrelevant; it only has to be large
    /// enough to obtain an average" (§3.1).
    pub area_blocks: u64,
    /// RNG seed for the in-band permutations.
    pub seed: u64,
}

impl Default for CalibrationSpec {
    fn default() -> Self {
        CalibrationSpec {
            band_sizes: vec![1, 100, 200, 400, 800, 1600, 3200, 6400, 9600, 12800],
            area_blocks: 25_600,
            seed: 0x1996_0226,
        }
    }
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct DttSample {
    /// Band size in blocks.
    pub band: u64,
    /// Average seconds per block, random reads within the band.
    pub read: f64,
    /// Average seconds per block, random (deferred) writes within the
    /// band.
    pub write: f64,
}

/// Measure average per-block read time for one band size.
fn measure_one(params: &DiskParams, band: u64, area: u64, seed: u64, write: bool) -> f64 {
    let mut disk = Disk::new(params.clone());
    let mut rng = SplitMix64::new(seed ^ band.wrapping_mul(0x51ED));
    let mut total = 0.0;
    let mut blocks = 0u64;
    let mut perm: Vec<u64> = Vec::with_capacity(band as usize);
    let mut base = 0u64;
    while base + band <= area {
        perm.clear();
        perm.extend(base..base + band);
        if band > 1 {
            rng.shuffle(&mut perm);
        }
        for &b in &perm {
            total += if write { disk.write(b) } else { disk.read(b) };
            blocks += 1;
        }
        base += band;
    }
    if write {
        total += disk.flush();
    }
    if blocks == 0 {
        0.0
    } else {
        total / blocks as f64
    }
}

/// Run the full calibration, returning the per-band samples.
pub fn measure_dtt(params: &DiskParams, spec: &CalibrationSpec) -> Vec<DttSample> {
    spec.band_sizes
        .iter()
        .map(|&band| DttSample {
            band,
            read: measure_one(params, band, spec.area_blocks, spec.seed, false),
            write: measure_one(params, band, spec.area_blocks, spec.seed, true),
        })
        .collect()
}

/// Run the calibration and package the samples as interpolation curves
/// ready for [`mmjoin_env::machine::MachineParams`].
pub fn calibrate_curves(
    params: &DiskParams,
    spec: &CalibrationSpec,
) -> Result<(DttCurve, DttCurve)> {
    let samples = measure_dtt(params, spec);
    let read = DttCurve::from_points(samples.iter().map(|s| (s.band as f64, s.read)).collect())?;
    let write = DttCurve::from_points(samples.iter().map(|s| (s.band as f64, s.write)).collect())?;
    Ok((read, write))
}

/// Convenience: a full [`mmjoin_env::machine::MachineParams`] whose
/// `dtt` curves were measured from `params` with the default
/// calibration spec — the coupling the experiments and examples use.
pub fn calibrated_params(params: &DiskParams) -> Result<mmjoin_env::machine::MachineParams> {
    let (dttr, dttw) = calibrate_curves(params, &CalibrationSpec::default())?;
    Ok(mmjoin_env::machine::MachineParams {
        dttr,
        dttw,
        ..mmjoin_env::machine::MachineParams::waterloo96()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let bound = 1 + a.next_u64() % 1000;
            let mut b2 = b.clone();
            // keep generators aligned
            let _ = b.next_u64();
            let v = b2.below(bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(7);
        let mut v: Vec<u64> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move things");
    }

    #[test]
    fn fig1a_shape_reproduced() {
        let params = DiskParams::waterloo96();
        let spec = CalibrationSpec {
            band_sizes: vec![1, 200, 1600, 12800],
            area_blocks: 12_800 * 2,
            seed: 1,
        };
        let samples = measure_dtt(&params, &spec);
        // Reads grow with band size.
        for w in samples.windows(2) {
            assert!(
                w[1].read > w[0].read,
                "dttr must increase: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // Writes cheaper than reads at every band size except possibly
        // the fully sequential one.
        for s in &samples[1..] {
            assert!(s.write < s.read, "dttw < dttr at band {}", s.band);
        }
        // Magnitudes in the neighbourhood of Fig. 1a (milliseconds).
        let seq = samples[0].read;
        let rand = samples.last().unwrap().read;
        assert!(seq > 2e-3 && seq < 10e-3, "sequential read {seq}");
        assert!(rand > 12e-3 && rand < 30e-3, "random read {rand}");
    }

    #[test]
    fn calibrated_curves_interpolate() {
        let params = DiskParams::waterloo96();
        let spec = CalibrationSpec {
            band_sizes: vec![1, 800, 12800],
            area_blocks: 25_600,
            seed: 3,
        };
        let (r, w) = calibrate_curves(&params, &spec).unwrap();
        assert!(r.eval(400.0) > r.eval(1.0));
        assert!(r.eval(400.0) < r.eval(12800.0));
        assert!(w.eval(12800.0) < r.eval(12800.0));
    }
}
