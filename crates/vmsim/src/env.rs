//! `SimEnv`: an execution-driven simulated memory-mapped environment.
//!
//! `SimEnv` implements [`mmjoin_env::Env`] by actually storing file
//! contents in memory (so the join algorithms run for real and produce
//! real output) while charging virtual time for everything the paper's
//! machine would pay for:
//!
//! * page faults through a per-process [`Pager`] with budget
//!   `M_Rproc`/`M_Sproc` (strict LRU by default, §3);
//! * disk service through the mechanistic [`Disk`] model, including
//!   deferred elevator write-back (§3.1);
//! * `newMap`/`openMap`/`deleteMap` setup charges, serialized across
//!   processes (§5.3: "the setup time is multiplied by D since
//!   manipulating a mapping is a serial operation");
//! * CPU operations, memory moves and context switches declared by the
//!   algorithms, priced by [`MachineParams`];
//! * the `Sproc` shared-buffer protocol for all access to `S` (§5.1).
//!
//! Each process accumulates its own virtual clock; the elapsed time of a
//! join is the maximum over the `Rproc` clocks, exactly as the paper's
//! analysis assumes (§4). Optional queued contention mode models disks
//! as serially-reusable resources for the naive-baseline experiments.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mmjoin_env::machine::MachineParams;
use mmjoin_env::trace::{null_sink, MapOp, TraceEvent as StructuredEvent, TraceSink};
use mmjoin_env::{
    CpuOp, DiskId, Env, EnvError, EnvStats, FileOps, MoveKind, ProcId, ProcStats, Result, SCatalog,
    SPtr,
};
use parking_lot::{Mutex, RwLock};

use crate::disk::{Disk, DiskParams, DiskStats};
use crate::pager::{Access, PageKey, Pager, Policy};
use crate::trace::{TraceEvent, TraceKind};

/// How simultaneous requests for one disk are arbitrated (§3: "we leave
/// unspecified the disk arbitration mechanism", listing alternatives).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ContentionMode {
    /// Processes never wait for one another (the paper's default
    /// assumption: "there is little or no contention during the D-fold
    /// parallelism").
    #[default]
    Independent,
    /// Overlapping requests serialize: each disk tracks a virtual
    /// `busy_until` and a request starting earlier waits. Used for the
    /// naive-baseline and synchronization ablations.
    Queued,
}

/// Everything needed to stand up a simulated machine.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Measured machine parameters (shared with the analytical model).
    pub machine: MachineParams,
    /// Disk geometry/timing; every disk is identical.
    pub disk: DiskParams,
    /// `D`: number of disks (= number of R/S partitions).
    pub num_disks: u32,
    /// `M_Rproc_i` in pages, for every Rproc.
    pub rproc_pages: usize,
    /// `M_Sproc_i` in pages, for every Sproc.
    pub sproc_pages: usize,
    /// Page replacement policy.
    pub policy: Policy,
    /// Disk arbitration.
    pub contention: ContentionMode,
    /// Charge mapping setup ×D (serial mapping manipulation). On by
    /// default to match the model.
    pub serial_maps: bool,
    /// Record every disk access for [`crate::trace`] analysis (off by
    /// default: tracing a full paper-scale join collects ~10⁵ events).
    pub trace: bool,
}

impl SimConfig {
    /// A machine shaped like the paper's test bed: 4 disks, 4 KB pages.
    pub fn waterloo96(num_disks: u32) -> Self {
        SimConfig {
            machine: MachineParams::waterloo96(),
            disk: DiskParams::waterloo96(),
            num_disks,
            rproc_pages: 1024,
            sproc_pages: 1024,
            policy: Policy::Lru,
            contention: ContentionMode::Independent,
            serial_maps: true,
            trace: false,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.num_disks == 0 {
            return Err(EnvError::InvalidConfig("num_disks must be > 0".into()));
        }
        if self.machine.page_size != self.disk.block_size {
            return Err(EnvError::InvalidConfig(format!(
                "page size {} != disk block size {}",
                self.machine.page_size, self.disk.block_size
            )));
        }
        Ok(())
    }
}

/// Contents and write-back state of one file.
struct FileBody {
    data: Vec<u8>,
    /// Bit per page: has this page ever been materialized on disk? A
    /// fault on a never-materialized page of a temporary area is a
    /// zero-fill fault and costs no disk read.
    materialized: Vec<u64>,
}

impl FileBody {
    fn new(bytes: u64, page: u64) -> Self {
        let pages = bytes.div_ceil(page) as usize;
        FileBody {
            data: vec![0u8; bytes as usize],
            materialized: vec![0u64; pages.div_ceil(64)],
        }
    }

    fn is_materialized(&self, page: u64) -> bool {
        let (w, b) = (page / 64, page % 64);
        self.materialized
            .get(w as usize)
            .is_some_and(|word| word & (1 << b) != 0)
    }

    fn set_materialized(&mut self, page: u64) {
        let (w, b) = (page / 64, page % 64);
        if let Some(word) = self.materialized.get_mut(w as usize) {
            *word |= 1 << b;
        }
    }

    fn set_all_materialized(&mut self) {
        for w in &mut self.materialized {
            *w = u64::MAX;
        }
    }
}

/// Immutable metadata plus locked body of one file.
struct FileEntry {
    name: String,
    disk: DiskId,
    start_block: u64,
    bytes: u64,
    deleted: AtomicBool,
    body: Mutex<FileBody>,
}

impl FileEntry {
    fn blocks(&self, page: u64) -> u64 {
        self.bytes.div_ceil(page)
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<()> {
        if self.deleted.load(Ordering::Acquire) {
            return Err(EnvError::NotFound(self.name.clone()));
        }
        if offset.checked_add(len).is_none_or(|end| end > self.bytes) {
            return Err(EnvError::OutOfBounds {
                file: self.name.clone(),
                offset,
                len,
                size: self.bytes,
            });
        }
        Ok(())
    }
}

/// Per-disk mutable state: the drive model, the extent allocator and the
/// virtual busy horizon for queued contention.
struct DiskState {
    disk: Disk,
    /// Bump pointer for extent allocation.
    next_block: u64,
    /// Freed extents `(start, blocks)` available for exact-fit reuse
    /// (keeps the Merge/RS swap of sort-merge at a stable disk address).
    free: Vec<(u64, u64)>,
    /// Virtual time until which the disk is busy (queued mode).
    busy_until: f64,
}

/// Per-process mutable state.
struct ProcState {
    pager: Pager,
    stats: ProcStats,
}

struct FileTable {
    by_name: HashMap<String, u32>,
    entries: Vec<Option<Arc<FileEntry>>>,
}

struct SState {
    catalog: SCatalog,
    parts: Vec<(u32, Arc<FileEntry>)>,
}

struct SimInner {
    cfg: SimConfig,
    files: RwLock<FileTable>,
    disks: Vec<Mutex<DiskState>>,
    procs: Vec<Mutex<ProcState>>,
    s_state: RwLock<Option<SState>>,
    trace: Mutex<Vec<TraceEvent>>,
    /// Structured event sink (`mmjoin_env::trace`), distinct from the
    /// low-level per-access `trace` above.
    sink: RwLock<Arc<dyn TraceSink>>,
}

/// Which physical operation to charge.
enum DiskOp {
    Read(u64),
    Write(u64),
}

/// The simulated environment. Cheap to clone (shared interior).
#[derive(Clone)]
pub struct SimEnv {
    inner: Arc<SimInner>,
}

/// Handle to a simulated file.
#[derive(Clone)]
pub struct SimFile {
    inner: Arc<SimInner>,
    idx: u32,
    entry: Arc<FileEntry>,
}

impl SimEnv {
    /// Build a simulated machine from `cfg`.
    pub fn new(cfg: SimConfig) -> Result<Self> {
        cfg.validate()?;
        let d = cfg.num_disks;
        let disks = (0..d)
            .map(|_| {
                Mutex::new(DiskState {
                    disk: Disk::new(cfg.disk.clone()),
                    next_block: 0,
                    free: Vec::new(),
                    busy_until: 0.0,
                })
            })
            .collect();
        let procs = (0..ProcId::slots(d))
            .map(|slot| {
                let budget = if slot < d as usize {
                    cfg.rproc_pages
                } else {
                    cfg.sproc_pages
                };
                Mutex::new(ProcState {
                    pager: Pager::new(budget, cfg.policy),
                    stats: ProcStats::default(),
                })
            })
            .collect();
        Ok(SimEnv {
            inner: Arc::new(SimInner {
                cfg,
                files: RwLock::new(FileTable {
                    by_name: HashMap::new(),
                    entries: Vec::new(),
                }),
                disks,
                procs,
                s_state: RwLock::new(None),
                trace: Mutex::new(Vec::new()),
                sink: RwLock::new(null_sink()),
            }),
        })
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &SimConfig {
        &self.inner.cfg
    }

    /// Flush every disk's pending write queue, charging the given
    /// process. Join drivers call this at the end of a run so deferred
    /// write-back is not silently dropped from the measurement.
    pub fn drain_disks(&self, proc: ProcId) {
        let mut total = 0.0;
        for disk in &self.inner.disks {
            total += disk.lock().disk.flush();
        }
        let mut ps = self.inner.procs[proc.0 as usize].lock();
        ps.stats.io_time += total;
        ps.stats.clock += total;
    }

    /// Drain the recorded access trace (empty unless
    /// `SimConfig::trace` was set).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.trace.lock())
    }

    /// Install a structured trace sink (`mmjoin_env::trace`). Map
    /// setup/teardown events from this environment and pass events from
    /// the join algorithms flow to it, stamped with the emitting
    /// process's virtual clock.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        *self.inner.sink.write() = sink;
    }

    /// Per-disk counters.
    pub fn disk_stats(&self) -> Vec<DiskStats> {
        self.inner
            .disks
            .iter()
            .map(|d| d.lock().disk.stats().clone())
            .collect()
    }

    /// Direct read of file contents without paging charges (test and
    /// verification aid).
    pub fn peek(&self, name: &str, offset: u64, buf: &mut [u8]) -> Result<()> {
        let entry = self.lookup(name)?;
        entry.check_range(offset, buf.len() as u64)?;
        let body = entry.body.lock();
        buf.copy_from_slice(&body.data[offset as usize..offset as usize + buf.len()]);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<Arc<FileEntry>> {
        let files = self.inner.files.read();
        let idx = *files
            .by_name
            .get(name)
            .ok_or_else(|| EnvError::NotFound(name.into()))?;
        files.entries[idx as usize]
            .clone()
            .ok_or_else(|| EnvError::NotFound(name.into()))
    }

    fn charge_map_op(&self, proc: ProcId, seconds: f64) {
        let factor = if self.inner.cfg.serial_maps {
            self.inner.cfg.num_disks as f64
        } else {
            1.0
        };
        let mut ps = self.inner.procs[proc.0 as usize].lock();
        ps.stats.map_ops += 1;
        ps.stats.map_time += seconds * factor;
        ps.stats.clock += seconds * factor;
    }
}

impl SimInner {
    /// Panic with a useful message on a process id outside this
    /// machine's `2D` slots (programmer error, like slice indexing).
    fn proc_state(&self, proc: ProcId) -> &Mutex<ProcState> {
        self.procs.get(proc.0 as usize).unwrap_or_else(|| {
            panic!(
                "{proc} out of range: this machine has {} process slots ({} disks)",
                self.procs.len(),
                self.cfg.num_disks
            )
        })
    }

    /// Charge one disk access to `proc`, honoring the contention mode
    /// and recording a trace event when tracing is enabled. Note that
    /// deferred writes charge their whole elevator batch to the access
    /// that fills the queue, so traced write services are lumpy; the
    /// analyzer only uses their mean.
    fn charge_disk(&self, proc: ProcId, disk: DiskId, op: DiskOp) -> f64 {
        let clock_now = self.proc_state(proc).lock().stats.clock;
        let mut ds = self.disks[disk.0 as usize].lock();
        let (svc, block, kind) = match op {
            DiskOp::Read(b) => (ds.disk.read(b), b, TraceKind::Read),
            DiskOp::Write(b) => (ds.disk.write(b), b, TraceKind::Write),
        };
        let charged = match self.cfg.contention {
            ContentionMode::Independent => svc,
            ContentionMode::Queued => {
                let start = clock_now.max(ds.busy_until);
                let end = start + svc;
                ds.busy_until = end;
                end - clock_now
            }
        };
        drop(ds);
        if self.cfg.trace {
            self.trace.lock().push(TraceEvent {
                disk: disk.0,
                proc: proc.0,
                block,
                kind,
                service: svc,
            });
        }
        charged
    }

    /// Page one range of `entry` in through `pager_proc`'s pager,
    /// charging costs to `charge_proc`. `dirty` marks the touched pages
    /// modified.
    #[allow(clippy::too_many_arguments)]
    fn page_range(
        &self,
        pager_proc: ProcId,
        charge_proc: ProcId,
        entry: &Arc<FileEntry>,
        idx: u32,
        offset: u64,
        len: u64,
        dirty: bool,
    ) -> Result<()> {
        entry.check_range(offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let page = self.cfg.machine.page_size;
        let first = offset / page;
        let last = (offset + len - 1) / page;
        let fault_overhead = self.cfg.machine.op(CpuOp::FaultOverhead);
        for p in first..=last {
            // Decide hit/fault under the pager lock, then price I/O
            // outside it.
            let access = {
                let mut ps = self.proc_state(pager_proc).lock();
                ps.pager.touch(PageKey { file: idx, page: p }, dirty)
            };
            match access {
                Access::Hit => {
                    self.proc_state(charge_proc).lock().stats.page_hits += 1;
                }
                Access::Fault { evicted } => {
                    let mut io = 0.0;
                    let mut wrote = 0u64;
                    if let Some(ev) = evicted {
                        if ev.dirty {
                            // Write the victim back to its own file's disk.
                            if let Some(victim) =
                                self.files.read().entries[ev.key.file as usize].clone()
                            {
                                if !victim.deleted.load(Ordering::Acquire) {
                                    victim.body.lock().set_materialized(ev.key.page);
                                    let block = victim.start_block + ev.key.page;
                                    io += self.charge_disk(
                                        charge_proc,
                                        victim.disk,
                                        DiskOp::Write(block),
                                    );
                                    wrote = 1;
                                }
                            }
                        }
                    }
                    // Read the faulting page unless it is a zero-fill
                    // fault on a never-materialized page.
                    let needs_read = entry.body.lock().is_materialized(p);
                    let mut read = 0u64;
                    if needs_read {
                        let block = entry.start_block + p;
                        io += self.charge_disk(charge_proc, entry.disk, DiskOp::Read(block));
                        read = 1;
                    }
                    let mut ps = self.proc_state(charge_proc).lock();
                    ps.stats.fault_read_blocks += read;
                    ps.stats.fault_write_blocks += wrote;
                    ps.stats.io_time += io;
                    ps.stats.clock += io;
                    ps.stats.add_cpu(CpuOp::FaultOverhead, 1, fault_overhead);
                }
            }
        }
        Ok(())
    }
}

impl FileOps for SimFile {
    fn len(&self) -> u64 {
        self.entry.bytes
    }

    fn read_at(&self, proc: ProcId, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.page_range(
            proc,
            proc,
            &self.entry,
            self.idx,
            offset,
            buf.len() as u64,
            false,
        )?;
        let body = self.entry.body.lock();
        buf.copy_from_slice(&body.data[offset as usize..offset as usize + buf.len()]);
        Ok(())
    }

    fn write_at(&self, proc: ProcId, offset: u64, buf: &[u8]) -> Result<()> {
        self.inner.page_range(
            proc,
            proc,
            &self.entry,
            self.idx,
            offset,
            buf.len() as u64,
            true,
        )?;
        let mut body = self.entry.body.lock();
        body.data[offset as usize..offset as usize + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    fn sync(&self, _proc: ProcId) -> Result<()> {
        // The simulator updates file bodies synchronously at `write_at`
        // time (the pager only models *costs*), so durability is
        // immediate and this honors the flush-before-commit contract as
        // a no-op. Deliberately uncharged: the paper's model has no
        // msync operation.
        Ok(())
    }
}

impl Env for SimEnv {
    type File = SimFile;

    fn page_size(&self) -> u64 {
        self.inner.cfg.machine.page_size
    }

    fn num_disks(&self) -> u32 {
        self.inner.cfg.num_disks
    }

    fn create_file(
        &self,
        proc: ProcId,
        name: &str,
        disk: DiskId,
        bytes: u64,
    ) -> Result<Self::File> {
        if disk.0 >= self.inner.cfg.num_disks {
            return Err(EnvError::InvalidConfig(format!("no such disk {disk}")));
        }
        let page = self.page_size();
        let blocks = bytes.div_ceil(page);
        let start_block = {
            let mut ds = self.inner.disks[disk.0 as usize].lock();
            // Exact-fit reuse first (stable addresses for swap areas).
            if let Some(pos) = ds.free.iter().position(|&(_, len)| len == blocks) {
                let (start, _) = ds.free.swap_remove(pos);
                start
            } else {
                let start = ds.next_block;
                if start + blocks > self.inner.cfg.disk.capacity_blocks() {
                    return Err(EnvError::DiskFull(disk));
                }
                ds.next_block += blocks;
                start
            }
        };
        let entry = Arc::new(FileEntry {
            name: name.to_string(),
            disk,
            start_block,
            bytes,
            deleted: AtomicBool::new(false),
            body: Mutex::new(FileBody::new(bytes, page)),
        });
        let idx = {
            let mut files = self.inner.files.write();
            if files.by_name.contains_key(name) {
                return Err(EnvError::AlreadyExists(name.into()));
            }
            let idx = files.entries.len() as u32;
            files.entries.push(Some(entry.clone()));
            files.by_name.insert(name.to_string(), idx);
            idx
        };
        self.charge_map_op(proc, self.inner.cfg.machine.map_cost.new_map(blocks));
        self.trace(
            proc,
            StructuredEvent::MapSetup {
                proc: proc.0,
                op: MapOp::New,
                name: name.to_string(),
                disk: disk.0,
                bytes,
            },
        );
        Ok(SimFile {
            inner: self.inner.clone(),
            idx,
            entry,
        })
    }

    fn open_file(&self, proc: ProcId, name: &str) -> Result<Self::File> {
        let (idx, entry) = {
            let files = self.inner.files.read();
            let idx = *files
                .by_name
                .get(name)
                .ok_or_else(|| EnvError::NotFound(name.into()))?;
            let entry = files.entries[idx as usize]
                .clone()
                .ok_or_else(|| EnvError::NotFound(name.into()))?;
            (idx, entry)
        };
        let blocks = entry.blocks(self.page_size());
        self.charge_map_op(proc, self.inner.cfg.machine.map_cost.open_map(blocks));
        self.trace(
            proc,
            StructuredEvent::MapSetup {
                proc: proc.0,
                op: MapOp::Open,
                name: name.to_string(),
                disk: entry.disk.0,
                bytes: entry.bytes,
            },
        );
        Ok(SimFile {
            inner: self.inner.clone(),
            idx,
            entry,
        })
    }

    fn delete_file(&self, proc: ProcId, name: &str) -> Result<()> {
        let (idx, entry) = {
            let mut files = self.inner.files.write();
            let idx = files
                .by_name
                .remove(name)
                .ok_or_else(|| EnvError::NotFound(name.into()))?;
            let entry = files.entries[idx as usize]
                .take()
                .ok_or_else(|| EnvError::NotFound(name.into()))?;
            (idx, entry)
        };
        entry.deleted.store(true, Ordering::Release);
        // Discard resident pages everywhere; destroyed data is never
        // written back.
        for proc_state in &self.inner.procs {
            proc_state.lock().pager.drop_file(idx);
        }
        let blocks = entry.blocks(self.page_size());
        {
            let mut ds = self.inner.disks[entry.disk.0 as usize].lock();
            ds.free.push((entry.start_block, blocks));
        }
        self.charge_map_op(proc, self.inner.cfg.machine.map_cost.delete_map(blocks));
        self.trace(
            proc,
            StructuredEvent::MapTeardown {
                proc: proc.0,
                name: name.to_string(),
                disk: entry.disk.0,
            },
        );
        Ok(())
    }

    fn list_files(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.files.read().by_name.keys().cloned().collect();
        names.sort();
        names
    }

    fn cpu(&self, proc: ProcId, op: CpuOp, count: u64) {
        if count == 0 {
            return;
        }
        let each = self.inner.cfg.machine.op(op);
        self.inner
            .proc_state(proc)
            .lock()
            .stats
            .add_cpu(op, count, each);
    }

    fn move_bytes(&self, proc: ProcId, kind: MoveKind, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let per_byte = self.inner.cfg.machine.mt(kind);
        self.inner
            .proc_state(proc)
            .lock()
            .stats
            .add_move(kind, bytes, per_byte);
    }

    fn context_switches(&self, proc: ProcId, count: u64) {
        if count == 0 {
            return;
        }
        let each = self.inner.cfg.machine.cs;
        self.inner
            .proc_state(proc)
            .lock()
            .stats
            .add_ctx(count, each);
    }

    fn register_s(&self, catalog: SCatalog) -> Result<()> {
        if catalog.num_parts() != self.inner.cfg.num_disks {
            return Err(EnvError::BadSRequest(format!(
                "catalog has {} partitions, machine has {} disks",
                catalog.num_parts(),
                self.inner.cfg.num_disks
            )));
        }
        let mut parts = Vec::with_capacity(catalog.part_files.len());
        for name in &catalog.part_files {
            let files = self.inner.files.read();
            let idx = *files
                .by_name
                .get(name)
                .ok_or_else(|| EnvError::NotFound(name.clone()))?;
            let entry = files.entries[idx as usize]
                .clone()
                .ok_or_else(|| EnvError::NotFound(name.clone()))?;
            parts.push((idx, entry));
        }
        *self.inner.s_state.write() = Some(SState { catalog, parts });
        Ok(())
    }

    fn s_fetch_batch(
        &self,
        proc: ProcId,
        spart: u32,
        ptrs: &[SPtr],
        req_bytes_each: u64,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if ptrs.is_empty() {
            return Ok(());
        }
        let guard = self.inner.s_state.read();
        let s = guard
            .as_ref()
            .ok_or_else(|| EnvError::BadSRequest("no S catalog registered".into()))?;
        let (idx, entry) = s
            .parts
            .get(spart as usize)
            .ok_or_else(|| EnvError::BadSRequest(format!("no S partition {spart}")))?;
        let obj = s.catalog.s_obj_size as u64;
        let part_bytes = s.catalog.part_bytes;
        let d = self.inner.cfg.num_disks;
        let sproc = ProcId::sproc(spart, d);
        // One shared-buffer exchange: two context switches, and
        // (req + s) bytes per object through shared memory (§5.3).
        self.context_switches(proc, 2);
        self.move_bytes(
            proc,
            MoveKind::PS,
            ptrs.len() as u64 * (req_bytes_each + obj),
        );
        let start = out.len();
        out.resize(start + ptrs.len() * obj as usize, 0);
        for (i, ptr) in ptrs.iter().enumerate() {
            if ptr.partition(part_bytes) != spart {
                return Err(EnvError::BadSRequest(format!(
                    "{ptr} is not in partition {spart}"
                )));
            }
            let off = ptr.offset(part_bytes);
            // Fault through the owning Sproc's pager; the requesting
            // Rproc waits, so the time lands on its clock.
            self.inner
                .page_range(sproc, proc, entry, *idx, off, obj, false)?;
            let body = entry.body.lock();
            out[start + i * obj as usize..start + (i + 1) * obj as usize]
                .copy_from_slice(&body.data[off as usize..(off + obj) as usize]);
        }
        let mut ps = self.inner.procs[proc.0 as usize].lock();
        ps.stats.s_batches += 1;
        ps.stats.s_objects += ptrs.len() as u64;
        Ok(())
    }

    /// See [`SimEnv`]-level docs: loads contents and marks every touched
    /// page as already materialized on disk — the relation pre-exists,
    /// so its first access during a join is a real (charged) read fault.
    fn preload(&self, name: &str, offset: u64, data: &[u8]) -> Result<()> {
        let entry = self.lookup(name)?;
        entry.check_range(offset, data.len() as u64)?;
        let mut body = entry.body.lock();
        body.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        body.set_all_materialized();
        Ok(())
    }

    fn reset_stats(&self) {
        for p in &self.inner.procs {
            p.lock().stats = ProcStats::default();
        }
    }

    fn now(&self, proc: ProcId) -> f64 {
        self.inner.proc_state(proc).lock().stats.clock
    }

    fn stats(&self) -> EnvStats {
        EnvStats {
            procs: self
                .inner
                .procs
                .iter()
                .map(|p| p.lock().stats.clone())
                .collect(),
        }
    }

    fn trace_sink(&self) -> Arc<dyn TraceSink> {
        self.inner.sink.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_env() -> SimEnv {
        let mut cfg = SimConfig::waterloo96(2);
        cfg.rproc_pages = 4;
        cfg.sproc_pages = 4;
        SimEnv::new(cfg).unwrap()
    }

    const R0: ProcId = ProcId(0);

    #[test]
    fn rejects_mismatched_page_and_block_size() {
        let mut cfg = SimConfig::waterloo96(1);
        cfg.machine.page_size = 8192;
        assert!(SimEnv::new(cfg).is_err());
    }

    #[test]
    fn create_open_delete_lifecycle() {
        let env = small_env();
        let f = env.create_file(R0, "t", DiskId(0), 10_000).unwrap();
        assert_eq!(f.len(), 10_000);
        assert!(env.open_file(R0, "t").is_ok());
        assert!(matches!(
            env.create_file(R0, "t", DiskId(0), 1),
            Err(EnvError::AlreadyExists(_))
        ));
        env.delete_file(R0, "t").unwrap();
        assert!(matches!(env.open_file(R0, "t"), Err(EnvError::NotFound(_))));
        // Stale handle turns into NotFound.
        let mut buf = [0u8; 4];
        assert!(f.read_at(R0, 0, &mut buf).is_err());
    }

    #[test]
    fn read_write_roundtrip() {
        let env = small_env();
        let f = env.create_file(R0, "t", DiskId(0), 8192).unwrap();
        f.write_at(R0, 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        f.read_at(R0, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let env = small_env();
        let f = env.create_file(R0, "t", DiskId(0), 100).unwrap();
        let mut buf = [0u8; 8];
        assert!(f.read_at(R0, 96, &mut buf).is_err());
        assert!(f.write_at(R0, u64::MAX - 2, &[1, 2, 3]).is_err());
    }

    #[test]
    fn zero_fill_faults_cost_no_disk_read() {
        let env = small_env();
        let f = env.create_file(R0, "t", DiskId(0), 4 * 4096).unwrap();
        f.write_at(R0, 0, &[1u8; 4096]).unwrap();
        let st = env.stats();
        assert_eq!(st.procs[0].fault_read_blocks, 0, "fresh page is zero-fill");
        // CPU fault overhead is still charged.
        assert_eq!(st.procs[0].cpu_ops[CpuOp::FaultOverhead.index()], 1);
    }

    #[test]
    fn preloaded_pages_cost_disk_reads() {
        let env = small_env();
        env.create_file(R0, "r", DiskId(0), 4 * 4096).unwrap();
        env.preload("r", 0, &vec![7u8; 4 * 4096]).unwrap();
        let before = env.stats().procs[0].fault_read_blocks;
        let f = env.open_file(R0, "r").unwrap();
        let mut buf = vec![0u8; 4 * 4096];
        f.read_at(R0, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        let st = env.stats();
        assert_eq!(st.procs[0].fault_read_blocks - before, 4);
        assert!(st.procs[0].io_time > 0.0);
    }

    #[test]
    fn lru_eviction_writes_dirty_pages_back() {
        let env = small_env(); // 4-page budget
        let f = env.create_file(R0, "t", DiskId(0), 8 * 4096).unwrap();
        for p in 0..8u64 {
            f.write_at(R0, p * 4096, &[p as u8; 4096]).unwrap();
        }
        // 8 writes through a 4-page budget: 4 evictions, all dirty.
        let st = env.stats();
        assert_eq!(st.procs[0].fault_write_blocks, 4);
        // Evicted pages are re-readable with correct contents (and now
        // cost real reads).
        let mut buf = [0u8; 1];
        f.read_at(R0, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 0);
        assert!(env.stats().procs[0].fault_read_blocks >= 1);
    }

    #[test]
    fn clock_accumulates_io_and_cpu() {
        let env = small_env();
        env.create_file(R0, "r", DiskId(0), 4096).unwrap();
        env.preload("r", 0, &[1u8; 4096]).unwrap();
        let f = env.open_file(R0, "r").unwrap();
        let mut b = [0u8; 1];
        f.read_at(R0, 0, &mut b).unwrap();
        env.cpu(R0, CpuOp::Compare, 1000);
        env.move_bytes(R0, MoveKind::PP, 10_000);
        let t = env.now(R0);
        let st = env.stats();
        let sum = st.procs[0].io_time
            + st.procs[0].cpu_time
            + st.procs[0].move_time
            + st.procs[0].ctx_time
            + st.procs[0].map_time;
        assert!((t - sum).abs() < 1e-12);
        assert!(t > 0.0);
    }

    #[test]
    fn serial_maps_charge_d_times() {
        let mut cfg = SimConfig::waterloo96(4);
        cfg.serial_maps = true;
        let env = SimEnv::new(cfg.clone()).unwrap();
        env.create_file(R0, "t", DiskId(0), 4096 * 100).unwrap();
        let serial = env.stats().procs[0].map_time;
        cfg.serial_maps = false;
        let env2 = SimEnv::new(cfg).unwrap();
        env2.create_file(R0, "t", DiskId(0), 4096 * 100).unwrap();
        let unserial = env2.stats().procs[0].map_time;
        assert!((serial - 4.0 * unserial).abs() < 1e-12);
    }

    #[test]
    fn s_fetch_returns_objects_and_charges_protocol() {
        let env = small_env();
        let part_bytes = 8 * 4096u64;
        for j in 0..2u32 {
            let name = format!("S_{j}");
            env.create_file(R0, &name, DiskId(j), part_bytes).unwrap();
            let mut data = vec![0u8; part_bytes as usize];
            for (i, chunk) in data.chunks_mut(128).enumerate() {
                chunk[0] = j as u8;
                chunk[1] = i as u8;
            }
            env.preload(&name, 0, &data).unwrap();
        }
        env.register_s(SCatalog {
            part_files: vec!["S_0".into(), "S_1".into()],
            part_bytes,
            s_obj_size: 128,
        })
        .unwrap();
        let ptrs = vec![
            SPtr::new(1, 0, part_bytes),
            SPtr::new(1, 3 * 128, part_bytes),
        ];
        let mut out = Vec::new();
        env.s_fetch_batch(R0, 1, &ptrs, 128 + 8, &mut out).unwrap();
        assert_eq!(out.len(), 2 * 128);
        assert_eq!((out[0], out[1]), (1, 0));
        assert_eq!((out[128], out[129]), (1, 3));
        let st = env.stats();
        assert_eq!(st.procs[0].ctx_switches, 2);
        assert_eq!(st.procs[0].s_batches, 1);
        assert_eq!(st.procs[0].s_objects, 2);
        assert_eq!(
            st.procs[0].move_bytes[MoveKind::PS.index()],
            2 * (128 + 8 + 128)
        );
        // Wrong partition is rejected.
        let bad = vec![SPtr::new(0, 0, part_bytes)];
        assert!(env.s_fetch_batch(R0, 1, &bad, 8, &mut out).is_err());
    }

    #[test]
    fn sproc_pager_caches_across_batches() {
        let env = small_env();
        let part_bytes = 4096u64;
        env.create_file(R0, "S_0", DiskId(0), part_bytes).unwrap();
        env.create_file(R0, "S_1", DiskId(1), part_bytes).unwrap();
        env.preload("S_0", 0, &vec![9u8; 4096]).unwrap();
        env.register_s(SCatalog {
            part_files: vec!["S_0".into(), "S_1".into()],
            part_bytes,
            s_obj_size: 64,
        })
        .unwrap();
        let p = vec![SPtr::new(0, 0, part_bytes)];
        let mut out = Vec::new();
        env.s_fetch_batch(R0, 0, &p, 8, &mut out).unwrap();
        let faults_after_first = env.stats().procs[0].fault_read_blocks;
        env.s_fetch_batch(R0, 0, &p, 8, &mut out).unwrap();
        let faults_after_second = env.stats().procs[0].fault_read_blocks;
        assert_eq!(faults_after_first, 1);
        assert_eq!(faults_after_second, 1, "second fetch hits Sproc cache");
    }

    #[test]
    fn queued_contention_inflates_no_single_proc() {
        // With a single process, queued mode must equal independent mode.
        let mut cfg = SimConfig::waterloo96(1);
        cfg.contention = ContentionMode::Queued;
        let env = SimEnv::new(cfg).unwrap();
        env.create_file(R0, "t", DiskId(0), 16 * 4096).unwrap();
        env.preload("t", 0, &vec![1u8; 16 * 4096]).unwrap();
        let f = env.open_file(R0, "t").unwrap();
        let mut buf = vec![0u8; 4096];
        for p in 0..16u64 {
            f.read_at(R0, p * 4096, &mut buf).unwrap();
        }
        let queued_io = env.stats().procs[0].io_time;

        let mut cfg2 = SimConfig::waterloo96(1);
        cfg2.contention = ContentionMode::Independent;
        let env2 = SimEnv::new(cfg2).unwrap();
        env2.create_file(R0, "t", DiskId(0), 16 * 4096).unwrap();
        env2.preload("t", 0, &vec![1u8; 16 * 4096]).unwrap();
        let f2 = env2.open_file(R0, "t").unwrap();
        for p in 0..16u64 {
            f2.read_at(R0, p * 4096, &mut buf).unwrap();
        }
        let indep_io = env2.stats().procs[0].io_time;
        assert!((queued_io - indep_io).abs() < 1e-9);
    }

    #[test]
    fn extent_reuse_is_exact_fit() {
        let env = small_env();
        env.create_file(R0, "a", DiskId(0), 10 * 4096).unwrap();
        env.create_file(R0, "b", DiskId(0), 5 * 4096).unwrap();
        env.delete_file(R0, "a").unwrap();
        // Same-size re-creation reuses a's extent (start block 0).
        env.create_file(R0, "c", DiskId(0), 10 * 4096).unwrap();
        // Different size does not; it bumps.
        env.create_file(R0, "d", DiskId(0), 1).unwrap();
        // No assertion on internals beyond success; behaviour is
        // observable through stable performance of swap patterns, and
        // exercised heavily by the sort-merge tests.
        env.delete_file(R0, "c").unwrap();
        env.delete_file(R0, "d").unwrap();
    }
}
