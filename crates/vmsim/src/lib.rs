//! # mmjoin-vmsim — execution-driven virtual-memory & disk simulator
//!
//! The paper validated its analytical model against a 1996 Sequent
//! Symmetry with Fujitsu disk drives. That hardware is gone; this crate
//! replaces it with a mechanistic simulation that preserves the parts of
//! its behaviour the paper's results depend on:
//!
//! * **paging**: per-process fixed memory budgets with strict-LRU
//!   replacement (plus FIFO/second-chance for ablations) — the source of
//!   every `dtt` charge in the paper's measurements ([`pager`]);
//! * **disks**: seek + rotation + transfer with deferred elevator
//!   write-back, which makes writes cheaper than reads exactly as the
//!   paper explains Fig. 1a ([`disk`]);
//! * **measured curves**: [`calibrate`] re-runs the paper's band
//!   measurement procedure against the simulated drive, producing the
//!   `dttr`/`dttw` curves the analytical model interpolates;
//! * **the environment**: [`env::SimEnv`] implements
//!   [`mmjoin_env::Env`], so the join algorithms in the `mmjoin` crate
//!   execute on real data here while accumulating per-process virtual
//!   time — the "Experiment" line of the paper's Fig. 5.

pub mod calibrate;
pub mod disk;
pub mod env;
pub mod pager;
pub mod trace;

pub use calibrate::{
    calibrate_curves, calibrated_params, measure_dtt, CalibrationSpec, DttSample, SplitMix64,
};
pub use disk::{Disk, DiskParams, DiskStats};
pub use env::{ContentionMode, SimConfig, SimEnv, SimFile};
pub use pager::{Access, Eviction, PageKey, Pager, Policy};
pub use trace::{analyze, DiskTraceStats, TraceEvent, TraceKind};
