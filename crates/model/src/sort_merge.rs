//! Analytical cost of parallel pointer-based sort-merge (paper §6.3).
//!
//! Passes 0/1 are nested loops' re-partitioning, except objects land in
//! `RS_i` (everything pointing into `S_i`) instead of being joined.
//! Pass 2 forms sorted runs of `IRUN` objects with a Floyd-built heap of
//! pointers; subsequent passes merge `NRUN` runs at a time
//! (delete-insert on a heap, cost `g(h)` per element); the final pass
//! merges `LRUN` runs and joins against a *sequential* scan of `S_i` —
//! the whole point of sorting by the virtual pointer.
//!
//! Because this algorithm synchronizes between phases, the worst-case
//! (skew-adjusted) partition sizes drive every pass (§6.3).
//!
//! Two deviations from the printed formulas, kept deliberately so the
//! model predicts the same machine the simulator executes on:
//!
//! * the paper charges `P_RSi·dttw` in *both* pass 0 and pass 1; we
//!   split the physical write volume — `R_{i,i}` pages in pass 0 and
//!   `RP_i` pages in pass 1 — which sums to `P_RSi` exactly once;
//! * the paper's `newMap(P_Si)` in the setup term is read as
//!   `newMap(P_Merge_i)` (the `Merge_i` area of its own layout diagram).

use mmjoin_env::machine::MachineParams;
use mmjoin_env::{CpuOp, MoveKind};

use crate::breakdown::{CostBreakdown, CostKind};
use crate::heapcost::{floyd_build, g_delete_insert, heapsort_drain, HeapWeights};
use crate::params::{choose_irun, choose_nrun_abl, choose_nrun_last, merge_plan, JoinInputs};

/// Predict one Rproc's elapsed time for sort-merge.
pub fn cost(m: &MachineParams, w: &JoinInputs) -> CostBreakdown {
    let b = m.page_size;
    let d = w.d as f64;
    let r = w.r_size as f64;
    let weights = HeapWeights {
        compare: m.op(CpuOp::Compare),
        swap: m.op(CpuOp::Swap),
        transfer: m.op(CpuOp::HeapTransfer),
    };

    // Populations, skew-adjusted (synchronization between phases means
    // the worst case gates every pass).
    let ri = w.ri();
    // Worst-case (skew-adjusted) populations, capped at their physical
    // maxima: one process never handles more than its own partition,
    // and no RS_i can exceed |R|.
    let ri_i = (ri / d * w.skew).min(ri);
    let rp = (ri * w.skew * (1.0 - 1.0 / d)).clamp(0.0, ri);
    let rs = (ri * w.skew).min(w.r_objects as f64); // |RS_i| worst case

    let p_ri = w.p_ri(b);
    let p_si = w.p_si(b);
    let p_rp = (rp * r / b as f64).ceil();
    let p_rs = (rs * r / b as f64).ceil();
    let p_ri_i = (ri_i * r / b as f64).ceil();
    let p_merge = p_rs;

    // Parameter choices (§6.2) — shared with the implementation.
    let irun = choose_irun(w.m_rproc, w.r_size);
    let nrun_abl = choose_nrun_abl(w.m_rproc, b);
    let nrun_last = choose_nrun_last(w.m_rproc, b);
    let plan = merge_plan(rs.ceil() as u64, irun, nrun_abl, nrun_last)
        .expect("choosers guarantee a valid plan");
    let npass = plan.npass as f64;

    let mut out = CostBreakdown::default();

    // ---------------- pass 0 ----------------
    let band0 = p_ri + p_si + p_rs + p_rp;
    out.push(
        "pass0",
        CostKind::DiskRead,
        format!("read R_i: {p_ri:.0} pages @ dttr({band0:.0})"),
        p_ri * m.dttr.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!("write R_(i,i) into RS_i: {p_ri_i:.0} pages @ dttw({band0:.0})"),
        p_ri_i * m.dttw.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!("write RP_i: {p_rp:.0} pages @ dttw({band0:.0})"),
        p_rp * m.dttw.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        format!("map join attributes: {ri:.0} ops"),
        ri * m.op(CpuOp::Map),
    );
    out.push(
        "pass0",
        CostKind::Move,
        format!("move |R_i| = {ri:.0} objects within segment"),
        ri * r * m.mt(MoveKind::PP),
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        "page-fault overhead",
        (p_ri + p_ri_i + p_rp) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- pass 1 ----------------
    let band1 = p_rs + p_rp;
    out.push(
        "pass1",
        CostKind::DiskRead,
        format!("read RP_i: {p_rp:.0} pages @ dttr({band1:.0})"),
        p_rp * m.dttr.eval(band1),
    );
    out.push(
        "pass1",
        CostKind::DiskWrite,
        format!("scatter RP_i into the RS_j: {p_rp:.0} pages @ dttw({band1:.0})"),
        p_rp * m.dttw.eval(band1),
    );
    out.push(
        "pass1",
        CostKind::Move,
        format!("move |RP_i| = {rp:.0} objects"),
        rp * r * m.mt(MoveKind::PP),
    );
    out.push(
        "pass1",
        CostKind::Cpu,
        "page-fault overhead",
        (2.0 * p_rp) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- pass 2: run formation ----------------
    let band_sort = (2.0 * r * irun as f64 / b as f64).max(1.0);
    out.push(
        "sort",
        CostKind::DiskRead,
        format!("read RS_i in runs of IRUN={irun}: {p_rs:.0} pages @ dttr({band_sort:.0})"),
        p_rs * m.dttr.eval(band_sort),
    );
    out.push(
        "sort",
        CostKind::DiskWrite,
        format!("age sorted runs back: {p_rs:.0} pages @ dttw({band_sort:.0})"),
        p_rs * m.dttw.eval(band_sort),
    );
    out.push(
        "sort",
        CostKind::Cpu,
        format!("Floyd heap construction over {rs:.0} pointers"),
        floyd_build(rs, &weights),
    );
    out.push(
        "sort",
        CostKind::Cpu,
        format!("heapsort drains: {rs:.0} × log2({irun})"),
        heapsort_drain(rs, irun as f64, &weights),
    );
    out.push(
        "sort",
        CostKind::Move,
        "permute R-objects in place",
        rs * r * m.mt(MoveKind::PP),
    );
    out.push(
        "sort",
        CostKind::Cpu,
        "page-fault overhead",
        (2.0 * p_rs) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- merge passes (all but last) ----------------
    let abl_passes = npass - 1.0;
    if abl_passes > 0.0 {
        let band_abl = p_rs + p_rp + p_merge;
        out.push(
            "merge",
            CostKind::DiskRead,
            format!("read runs: {p_rs:.0} pages × {abl_passes:.0} passes @ dttr({band_abl:.0})"),
            p_rs * m.dttr.eval(band_abl) * abl_passes,
        );
        out.push(
            "merge",
            CostKind::DiskWrite,
            format!(
                "write merged runs: {p_rs:.0} pages × {abl_passes:.0} passes @ dttw({band_abl:.0})"
            ),
            p_rs * m.dttw.eval(band_abl) * abl_passes,
        );
        out.push(
            "merge",
            CostKind::Cpu,
            format!("delete-insert on heap of NRUN={nrun_abl}"),
            (g_delete_insert(nrun_abl as f64, &weights) + 2.0 * weights.transfer) * rs * abl_passes,
        );
        out.push(
            "merge",
            CostKind::Move,
            "move objects between run areas",
            rs * r * m.mt(MoveKind::PP) * abl_passes,
        );
        out.push(
            "merge",
            CostKind::Setup,
            format!("swap source/destination maps × {abl_passes:.0} passes (serialized ×D)"),
            d * (m.map_cost.delete_map(p_merge as u64) + m.map_cost.new_map(p_merge as u64))
                * abl_passes,
        );
        out.push(
            "merge",
            CostKind::Cpu,
            "page-fault overhead",
            (2.0 * p_rs) * m.op(CpuOp::FaultOverhead) * abl_passes,
        );
    }

    // ---------------- last pass: merge-join ----------------
    let parity = if (plan.npass - 1) % 2 == 1 { 1.0 } else { 0.0 };
    let band_last = p_si + p_rs + (p_rp + p_merge) * parity;
    out.push(
        "last",
        CostKind::DiskRead,
        format!(
            "read LRUN={} runs: {p_rs:.0} pages @ dttr({band_last:.0})",
            plan.lrun
        ),
        p_rs * m.dttr.eval(band_last),
    );
    out.push(
        "last",
        CostKind::DiskRead,
        format!("read S_i sequentially: {p_si:.0} pages @ dttr({band_last:.0})"),
        p_si * m.dttr.eval(band_last),
    );
    out.push(
        "last",
        CostKind::Cpu,
        format!("delete-insert on heap of LRUN={}", plan.lrun),
        (g_delete_insert(plan.lrun as f64, &weights) + 2.0 * weights.transfer) * rs,
    );
    out.push(
        "last",
        CostKind::Move,
        format!("join {rs:.0} × (r+sptr+s) via shared buffer"),
        rs * w.join_unit() as f64 * m.mt(MoveKind::PS),
    );
    out.push(
        "last",
        CostKind::Ctx,
        "G-buffer exchanges with Sproc_i",
        w.ctx_switches_for(rs) * m.cs,
    );
    out.push(
        "last",
        CostKind::Cpu,
        "page-fault overhead",
        (p_rs + p_si) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- setup ----------------
    let mc = &m.map_cost;
    out.push(
        "setup",
        CostKind::Setup,
        "D × (openMap R_i + openMap S_i + newMap RS_i + newMap RP_i + newMap Merge_i)",
        d * (mc.open_map(p_ri as u64)
            + mc.open_map(p_si as u64)
            + mc.new_map(p_rs as u64)
            + mc.new_map(p_rp as u64)
            + mc.new_map(p_merge as u64)),
    );
    out
}

/// The merge schedule the model (and the implementation) will use for
/// the given inputs — exposed for experiment annotations (the Fig. 5b
/// staircase happens where `npass` steps).
pub fn plan_for(m: &MachineParams, w: &JoinInputs) -> crate::params::MergePlan {
    let rs = ((w.ri() * w.skew).min(w.r_objects as f64)).ceil() as u64;
    merge_plan(
        rs,
        choose_irun(w.m_rproc, w.r_size),
        choose_nrun_abl(w.m_rproc, m.page_size),
        choose_nrun_last(w.m_rproc, m.page_size),
    )
    .expect("choosers guarantee a valid plan")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(m_frac: f64) -> JoinInputs {
        let r_bytes = 102_400u64 * 128;
        JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: (m_frac * r_bytes as f64) as u64,
            m_sproc: (m_frac * r_bytes as f64) as u64,
            g_buffer: 4096,
        }
    }

    #[test]
    fn staircase_follows_npass() {
        // Sweeping memory downward, total time jumps exactly where the
        // merge plan gains a pass (Fig. 5b's discontinuities).
        let m = MachineParams::waterloo96();
        let mut last_npass = 0;
        let mut last_total = f64::INFINITY;
        for i in (10..=50).rev() {
            let w = inputs(i as f64 / 1000.0);
            let plan = plan_for(&m, &w);
            let total = cost(&m, &w).total();
            if plan.npass == last_npass {
                // Within a plateau, less memory can only be equal/worse.
                assert!(total >= last_total * 0.98, "frac={}", i as f64 / 1000.0);
            }
            last_npass = plan.npass;
            last_total = total;
        }
    }

    #[test]
    fn npass_increases_as_memory_shrinks() {
        let m = MachineParams::waterloo96();
        let big = plan_for(&m, &inputs(0.05)).npass;
        let small = plan_for(&m, &inputs(0.01)).npass;
        assert!(small >= big, "small-mem {small} vs big-mem {big}");
    }

    #[test]
    fn sort_merge_beats_nested_loops_at_small_memory() {
        // Fig. 5: at 1–5% memory, sort-merge (500–700 s) is far below
        // nested loops (which would sit near its 0.1 point ≈ 2000 s).
        let m = MachineParams::waterloo96();
        let sm = cost(&m, &inputs(0.03)).total();
        let nl = crate::nested_loops::cost(&m, &inputs(0.03)).total();
        assert!(sm < nl, "sort-merge {sm:.0}s vs nested loops {nl:.0}s");
    }

    #[test]
    fn total_is_positive_and_finite_across_sweep() {
        let m = MachineParams::waterloo96();
        for i in 1..=8 {
            let t = cost(&m, &inputs(i as f64 / 100.0)).total();
            assert!(t.is_finite() && t > 0.0);
        }
    }

    #[test]
    fn all_passes_present() {
        let m = MachineParams::waterloo96();
        let b = cost(&m, &inputs(0.01));
        let passes = b.passes();
        for p in ["pass0", "pass1", "sort", "last", "setup"] {
            assert!(passes.contains(&p), "missing {p}");
        }
        // At 1% memory the plan needs several passes, so merge appears.
        assert!(passes.contains(&"merge"));
    }
}
