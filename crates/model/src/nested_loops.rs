//! Analytical cost of parallel pointer-based nested loops (paper §5.3).
//!
//! Pass 0 reads `R_i` sequentially, immediately joins the `R_{i,i}`
//! objects through `Sproc_i`, and scatters the rest into the `RP_{i,j}`
//! sub-partitions. Pass 1 walks the sub-partitions in `D−1` staggered
//! phases, joining each against its `S_j`. Since phases are *not*
//! synchronized, `R_i` is not adjusted by skew — "the skew in `RP_{i,j}`
//! is compensated for by the additional parallelism resulting from the
//! lack of synchronization" — but the largest `R_{i,i}` is.

use mmjoin_env::machine::MachineParams;
use mmjoin_env::{CpuOp, MoveKind};

use crate::breakdown::{CostBreakdown, CostKind};
use crate::params::JoinInputs;
use crate::ylru::ylru;

/// Predict one Rproc's elapsed time for nested loops.
pub fn cost(m: &MachineParams, w: &JoinInputs) -> CostBreakdown {
    let b = m.page_size;
    let d = w.d as f64;
    let r = w.r_size as f64;

    // Object populations (§5.3).
    let ri = w.ri();
    // Largest R_{i,i}: skew-adjusted, but never more than the whole
    // partition (the paper's bound is loose at pathological skew).
    let ri_i = (ri / d * w.skew).min(ri);
    let rp = (ri - ri_i).max(0.0); // |RP_i| = |R_i| − |R_{i,i}|
    let rs_i = ri; // |RS_i|: objects of R pointing into S_i

    // Page populations.
    let p_ri = w.p_ri(b);
    let p_si = w.p_si(b);
    let p_rp = (rp * r / b as f64).ceil();

    let mut out = CostBreakdown::default();
    let msproc_pages = (w.m_sproc / b) as f64;

    // ---------------- pass 0 ----------------
    // All three areas share the disk, so random access spans them all.
    let band0 = p_ri + p_si + p_rp;
    let dttr0 = m.dttr.eval(band0);
    let dttw0 = m.dttw.eval(band0);
    out.push(
        "pass0",
        CostKind::DiskRead,
        format!("read R_i sequentially: {p_ri:.0} pages @ dttr({band0:.0})"),
        p_ri * dttr0,
    );
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!("write RP_i (mostly randomly): {p_rp:.0} pages @ dttw({band0:.0})"),
        p_rp * dttw0,
    );
    let y0 = ylru(rs_i, p_si, rs_i, msproc_pages, ri_i);
    out.push(
        "pass0",
        CostKind::DiskRead,
        format!("read S_i via Ylru: {y0:.0} faults @ dttr({band0:.0})"),
        y0 * dttr0,
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        format!("map join attributes: |R_i| = {ri:.0} ops"),
        ri * m.op(CpuOp::Map),
    );
    out.push(
        "pass0",
        CostKind::Move,
        format!("move |RP_i| = {rp:.0} objects private→private"),
        rp * r * m.mt(MoveKind::PP),
    );
    out.push(
        "pass0",
        CostKind::Move,
        format!("join R_(i,i): {ri_i:.0} × (r+sptr+s) via shared buffer"),
        ri_i * w.join_unit() as f64 * m.mt(MoveKind::PS),
    );
    out.push(
        "pass0",
        CostKind::Ctx,
        format!("G-buffer exchanges with Sproc_i for {ri_i:.0} objects"),
        w.ctx_switches_for(ri_i) * m.cs,
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        "page-fault overhead (reads + zero-fill writes)",
        (p_ri + y0 + p_rp) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- pass 1 ----------------
    let band1 = p_si + p_rp;
    let dttr1 = m.dttr.eval(band1);
    out.push(
        "pass1",
        CostKind::DiskRead,
        format!("read RP_i: {p_rp:.0} pages @ dttr({band1:.0})"),
        p_rp * dttr1,
    );
    let y1 = ylru(rs_i, p_si, rs_i, msproc_pages, rp);
    out.push(
        "pass1",
        CostKind::DiskRead,
        format!("read S_j via Ylru: {y1:.0} faults @ dttr({band1:.0})"),
        y1 * dttr1,
    );
    out.push(
        "pass1",
        CostKind::Move,
        format!("join |RP_i| = {rp:.0} × (r+sptr+s) via shared buffer"),
        rp * w.join_unit() as f64 * m.mt(MoveKind::PS),
    );
    out.push(
        "pass1",
        CostKind::Ctx,
        format!("G-buffer exchanges with Sproc_offset for {rp:.0} objects"),
        w.ctx_switches_for(rp) * m.cs,
    );
    out.push(
        "pass1",
        CostKind::Cpu,
        "page-fault overhead",
        (p_rp + y1) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- setup ----------------
    let mc = &m.map_cost;
    out.push(
        "setup",
        CostKind::Setup,
        "D × (openMap(P_Ri) + openMap(P_Si) + newMap(P_RPi))",
        d * (mc.open_map(p_ri as u64) + mc.open_map(p_si as u64) + mc.new_map(p_rp as u64)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::JoinInputs;

    fn inputs(m_frac: f64) -> JoinInputs {
        let r_bytes = 102_400u64 * 128;
        JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: (m_frac * r_bytes as f64) as u64,
            m_sproc: (m_frac * r_bytes as f64) as u64,
            g_buffer: 4096,
        }
    }

    #[test]
    fn more_memory_is_never_slower() {
        let m = MachineParams::waterloo96();
        let mut prev = f64::INFINITY;
        for frac in [0.1, 0.2, 0.3, 0.5, 0.7] {
            let t = cost(&m, &inputs(frac)).total();
            assert!(t <= prev + 1e-9, "frac={frac}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn fig5a_dynamic_range_is_reasonable() {
        // The paper's Fig. 5a spans roughly 2.5× from the smallest to the
        // largest memory. Require at least 1.5× in the model.
        let m = MachineParams::waterloo96();
        let low = cost(&m, &inputs(0.1)).total();
        let high = cost(&m, &inputs(0.7)).total();
        assert!(
            low / high > 1.5,
            "expected ≥1.5× improvement, got {low:.1}s → {high:.1}s"
        );
    }

    #[test]
    fn sfetch_io_dominates_at_low_memory() {
        // Nested loops' defining behaviour: random S reads dominate.
        let m = MachineParams::waterloo96();
        let b = cost(&m, &inputs(0.1));
        let s_reads: f64 = b
            .items
            .iter()
            .filter(|i| i.label.contains("Ylru"))
            .map(|i| i.seconds)
            .sum();
        assert!(
            s_reads > 0.5 * b.total(),
            "S reads {s_reads:.1}s of {:.1}s",
            b.total()
        );
    }

    #[test]
    fn skew_increases_pass0_s_reads() {
        // A larger worst-case R_(i,i) means more random S fetches in
        // pass 0 (the skew-adjusted term of §5.3).
        let m = MachineParams::waterloo96();
        let s_read_cost = |skew: f64| {
            let mut w = inputs(0.1);
            w.skew = skew;
            cost(&m, &w)
                .items
                .iter()
                .filter(|i| i.pass == "pass0" && i.label.contains("Ylru"))
                .map(|i| i.seconds)
                .sum::<f64>()
        };
        assert!(s_read_cost(2.0) > s_read_cost(1.0));
    }

    #[test]
    fn breakdown_has_both_passes_and_setup() {
        let m = MachineParams::waterloo96();
        let b = cost(&m, &inputs(0.3));
        assert_eq!(b.passes(), vec!["pass0", "pass1", "setup"]);
        assert!(b.total_kind(CostKind::Setup) > 0.0);
        assert!(b.total() > 0.0);
    }
}
