//! Heap operation cost formulas (paper §6.3).
//!
//! Sort-merge sorts runs with Floyd-constructed heaps of pointers,
//! drains them with the Munro-modified heapsort (≈ N log N comparisons
//! and transfers on average), and merges runs with delete-insert
//! operations whose amortized cost is the paper's `g(h)` function.

/// Cost weights for one heap element operation, in seconds.
#[derive(Clone, Copy, Debug)]
pub struct HeapWeights {
    /// `compare`: comparing two heap elements.
    pub compare: f64,
    /// `swap`: swapping two heap elements.
    pub swap: f64,
    /// `transfer`: moving an element to or from the heap.
    pub transfer: f64,
}

/// Cost of building a heap of `n` pointers with Floyd's algorithm plus
/// loading the elements:
/// `1.77·n·(compare + swap/2) + n·transfer` (§6.3).
pub fn floyd_build(n: f64, w: &HeapWeights) -> f64 {
    1.77 * n * (w.compare + w.swap / 2.0) + n * w.transfer
}

/// Cost of heap-sorting `n` elements in runs of length `irun` by
/// repeated deletion of minima: `n·log₂(irun)·(compare + transfer)`
/// (§6.3, Munro's modification).
pub fn heapsort_drain(n: f64, irun: f64, w: &HeapWeights) -> f64 {
    if irun < 2.0 {
        return 0.0;
    }
    n * irun.log2() * (w.compare + w.transfer)
}

/// The paper's `g(h)`: amortized comparison/swap cost of one
/// delete-insert on a merge heap of `h` runs,
/// `g(h) = (2·compare + swap)·((h+1)·k − h/2 − 2ᵏ)/h` with
/// `k = ⌊log₂ h⌋ + 1`. Degenerate heaps (`h < 2`) cost nothing.
pub fn g_delete_insert(h: f64, w: &HeapWeights) -> f64 {
    if h < 2.0 {
        return 0.0;
    }
    let k = h.log2().floor() + 1.0;
    let per = ((h + 1.0) * k - h / 2.0 - 2f64.powf(k)) / h;
    (2.0 * w.compare + w.swap) * per.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: HeapWeights = HeapWeights {
        compare: 1.0,
        swap: 1.0,
        transfer: 1.0,
    };

    #[test]
    fn floyd_is_linear() {
        let a = floyd_build(1000.0, &W);
        let b = floyd_build(2000.0, &W);
        assert!((b - 2.0 * a).abs() < 1e-9);
        // 1.77·(1 + 0.5) + 1 per element.
        assert!((a / 1000.0 - (1.77 * 1.5 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn heapsort_scales_n_log_irun() {
        let c = heapsort_drain(1024.0, 1024.0, &W);
        assert!((c - 1024.0 * 10.0 * 2.0).abs() < 1e-6);
        assert_eq!(heapsort_drain(100.0, 1.0, &W), 0.0);
    }

    #[test]
    fn g_grows_roughly_logarithmically() {
        let g2 = g_delete_insert(2.0, &W);
        let g16 = g_delete_insert(16.0, &W);
        let g256 = g_delete_insert(256.0, &W);
        assert!(g2 < g16 && g16 < g256);
        // Doubling h should add roughly a constant (log behaviour).
        let d1 = g_delete_insert(64.0, &W) - g_delete_insert(32.0, &W);
        let d2 = g_delete_insert(256.0, &W) - g_delete_insert(128.0, &W);
        assert!((d1 - d2).abs() < 1.5, "d1={d1} d2={d2}");
    }

    #[test]
    fn g_handles_degenerate_heaps() {
        assert_eq!(g_delete_insert(0.0, &W), 0.0);
        assert_eq!(g_delete_insert(1.0, &W), 0.0);
        assert!(g_delete_insert(2.0, &W) >= 0.0);
    }
}
