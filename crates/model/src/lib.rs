//! # mmjoin-model — the paper's quantitative analytical model
//!
//! A faithful implementation of the cost model of §3 and §5.3/§6.3/§7.3:
//! measured machine parameters (shared with the simulator via
//! [`mmjoin_env::machine::MachineParams`]), the Mackert–Lohman LRU fault
//! approximation ([`mod@ylru`]), the Johnson–Kotz urn model behind Grace's
//! thrashing term ([`urn`]), the heap cost functions ([`heapcost`]), the
//! paper's parameter-choice rules ([`params`]) and one itemized cost
//! function per join algorithm ([`nested_loops`], [`sort_merge`],
//! [`grace`]).
//!
//! The model is quantitative and auditable: every formula term becomes a
//! labelled [`CostBreakdown`] item, so predictions can be compared with
//! the execution-driven simulator pass by pass — the paper's validation
//! methodology (§8), and the tool it argues a query optimizer needs.

pub mod breakdown;
pub mod grace;
pub mod heapcost;
pub mod hybrid_hash;
pub mod nested_loops;
pub mod params;
pub mod sort_merge;
pub mod urn;
pub mod ylru;

pub use breakdown::{CostBreakdown, CostItem, CostKind};
pub use params::{
    choose_irun, choose_k, choose_nrun_abl, choose_nrun_last, choose_tsize, merge_plan, JoinInputs,
    MergePlan, HASH_ENTRY_OVERHEAD, HEAP_PTR_SIZE,
};
pub use ylru::ylru;

use mmjoin_env::machine::MachineParams;

/// Which join algorithm a prediction or run refers to.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// Parallel pointer-based nested loops (§5).
    NestedLoops,
    /// Parallel pointer-based sort-merge (§6).
    SortMerge,
    /// Parallel pointer-based Grace (§7).
    Grace,
    /// Parallel pointer-based hybrid hash (extension; the paper's §7
    /// future work, after Shekita–Carey).
    HybridHash,
}

impl Algorithm {
    /// All modelled algorithms (the paper's three plus the
    /// hybrid-hash extension).
    pub const ALL: [Algorithm; 4] = [
        Algorithm::NestedLoops,
        Algorithm::SortMerge,
        Algorithm::Grace,
        Algorithm::HybridHash,
    ];

    /// The three algorithms the paper itself models.
    pub const PAPER: [Algorithm; 3] = [
        Algorithm::NestedLoops,
        Algorithm::SortMerge,
        Algorithm::Grace,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::NestedLoops => "nested-loops",
            Algorithm::SortMerge => "sort-merge",
            Algorithm::Grace => "grace",
            Algorithm::HybridHash => "hybrid-hash",
        }
    }
}

/// Evaluate the model for `alg` on workload `w` under machine `m`.
pub fn predict(alg: Algorithm, m: &MachineParams, w: &JoinInputs) -> CostBreakdown {
    match alg {
        Algorithm::NestedLoops => nested_loops::cost(m, w),
        Algorithm::SortMerge => sort_merge::cost(m, w),
        Algorithm::Grace => grace::cost(m, w),
        Algorithm::HybridHash => hybrid_hash::cost(m, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_dispatches_to_all_algorithms() {
        let m = MachineParams::waterloo96();
        let w = JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: 2 << 20,
            m_sproc: 2 << 20,
            g_buffer: 4096,
        };
        for alg in Algorithm::ALL {
            let b = predict(alg, &m, &w);
            assert!(b.total() > 0.0, "{}", alg.name());
        }
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names: std::collections::HashSet<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }
}
