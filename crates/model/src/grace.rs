//! Analytical cost of the parallel pointer-based Grace join (paper §7.3).
//!
//! Passes 0/1 re-partition as before, but the join attribute is hashed —
//! by a *range-partitioning* hash, so bucket order equals S order — into
//! one of `K` buckets of `RS_i`. Pass `1+j` loads bucket `j` into an
//! in-memory hash table of `TSIZE` chains and joins it against a
//! near-sequential read of the matching `S_i` range.
//!
//! The distinctive modelling contribution is the urn-model approximation
//! of *thrashing*: with too little memory, a bucket's current page is
//! evicted before the next object hashes into it, costing one extra
//! write and one extra read (§7.3). That term produces Fig. 5c's knee.

use mmjoin_env::machine::MachineParams;
use mmjoin_env::{CpuOp, MoveKind};

use crate::breakdown::{CostBreakdown, CostKind};
use crate::params::{choose_k, JoinInputs};
use crate::urn::prob_empty_at_most;

/// Expected number of prematurely-replaced `RS_i` bucket pages in pass
/// 0, per the paper's epoch/urn argument.
///
/// After a bucket page is hit, objects keep hashing uniformly into the
/// `K` buckets. We divide the following objects into epochs (the first
/// of size `K`, then single objects, §7.3). The page suffers a premature
/// replacement if its *second* hit falls in an epoch by whose start the
/// page has already aged out of the `M/B`-page memory:
///
/// * pages pushed past it: `fills_j` fill events from the `RP_{i,j}`
///   streams (rate `(D−1)/⌊B/r⌋` per hashed object) plus the distinct
///   bucket pages hit (urn occupancy: `K − empty`) plus `D` current
///   pages;
/// * `p_j` = probability that enough distinct pages accumulated, from
///   the Johnson–Kotz occupancy CDF;
/// * `y_j` = probability the second hit lands in epoch `j` (geometric
///   survival at rate `1 − 1/K` per object).
///
/// Expected premature replacements = `|R_{i,i}| · Σ_j p_j · y_j`.
pub fn thrash_replacements(
    ri_i: f64,
    k: u64,
    d: u32,
    page_size: u64,
    r_size: u32,
    mem_pages: f64,
) -> f64 {
    if k == 0 || ri_i <= 0.0 {
        return 0.0;
    }
    let kf = k as f64;
    let per_page = (page_size / r_size as u64).max(1) as f64;
    let fill_rate = (d as f64 - 1.0) / per_page;
    let q = 1.0 - 1.0 / kf; // per-object survival (no hit on our bucket)

    let mut sum = 0.0;
    let mut h = 0.0; // objects hashed at epoch start (H_j)
    let mut survival = 1.0; // q^h
    for epoch in 0..200_000u64 {
        let alpha = if epoch == 0 { kf } else { 1.0 };
        // Probability the second hit falls inside this epoch.
        let y = survival * (1.0 - q.powf(alpha));
        // Pages accumulated since our page's last hit, evaluated at the
        // epoch's *end* (a hit inside the epoch has seen all of it; the
        // first, K-object epoch carries most of the probability mass, so
        // start-of-epoch evaluation would miss nearly all of it).
        let fills = (h + alpha) * fill_rate;
        // Our page is out if (fills + hit-buckets + D current) ≥ M/B,
        // i.e. the number of *empty* buckets is at most
        // K − (M/B − fills − D).
        let threshold = kf - (mem_pages - fills - d as f64);
        let p = if threshold < 0.0 {
            0.0
        } else if threshold >= kf {
            1.0
        } else {
            prob_empty_at_most(k, (h + alpha).round() as u64, threshold.floor() as u64)
        };
        sum += p * y;
        survival *= q.powf(alpha);
        h += alpha;
        if survival < 1e-12 {
            break;
        }
        // Once eviction is certain, the rest of the survival mass all
        // thrashes; close the sum analytically.
        if p >= 1.0 {
            sum += survival;
            break;
        }
    }
    ri_i * sum.clamp(0.0, 1.0)
}

/// Predict one Rproc's elapsed time for Grace.
pub fn cost(m: &MachineParams, w: &JoinInputs) -> CostBreakdown {
    let b = m.page_size;
    let d = w.d as f64;
    let r = w.r_size as f64;

    // Populations: skew-adjusted, as in sort-merge (phases synchronize).
    let ri = w.ri();
    // Worst-case (skew-adjusted) populations, capped at their physical
    // maxima: one process never handles more than its own partition,
    // and no RS_i can exceed |R|.
    let ri_i = (ri / d * w.skew).min(ri);
    let rp = (ri * w.skew * (1.0 - 1.0 / d)).clamp(0.0, ri);
    let rs = (ri * w.skew).min(w.r_objects as f64);

    let p_ri = w.p_ri(b);
    let p_si = w.p_si(b);
    let p_rp = (rp * r / b as f64).ceil();
    let p_rs = (rs * r / b as f64).ceil();
    let p_ri_i = (ri_i * r / b as f64).ceil();

    // Parameter choices (§7.2).
    let k = choose_k(rs.ceil() as u64, w.r_size, w.m_rproc);
    let kf = k as f64;
    let mem_pages = (w.m_rproc / b) as f64;

    let mut out = CostBreakdown::default();

    // ---------------- pass 0 ----------------
    let band0 = p_ri + p_si + p_rs + p_rp;
    out.push(
        "pass0",
        CostKind::DiskRead,
        format!("read R_i: {p_ri:.0} pages @ dttr({band0:.0})"),
        p_ri * m.dttr.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!("write RP_i: {p_rp:.0} pages @ dttw({band0:.0})"),
        p_rp * m.dttw.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!(
            "hash R_(i,i) into K={k} buckets: {:.0} pages @ dttw({band0:.0})",
            p_ri_i + kf
        ),
        (p_ri_i + kf) * m.dttw.eval(band0),
    );
    let thrash = thrash_replacements(ri_i, k, w.d, b, w.r_size, mem_pages);
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!("thrashing: {thrash:.0} premature replacements (urn model), extra writes"),
        thrash * m.dttw.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::DiskRead,
        format!("thrashing: {thrash:.0} premature replacements, extra re-reads"),
        thrash * m.dttr.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        format!("map join attributes: {ri:.0} ops"),
        ri * m.op(CpuOp::Map),
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        format!("hash R_(i,i): {ri_i:.0} ops"),
        ri_i * m.op(CpuOp::Hash),
    );
    out.push(
        "pass0",
        CostKind::Move,
        format!("move |R_i| = {ri:.0} objects within segment"),
        ri * r * m.mt(MoveKind::PP),
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        "page-fault overhead",
        (p_ri + p_ri_i + kf + p_rp + 2.0 * thrash) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- pass 1 ----------------
    let band1 = p_rs + p_rp;
    out.push(
        "pass1",
        CostKind::DiskRead,
        format!("read RP_i: {p_rp:.0} pages @ dttr({band1:.0})"),
        p_rp * m.dttr.eval(band1),
    );
    out.push(
        "pass1",
        CostKind::DiskWrite,
        format!(
            "hash into the RS_j buckets: {:.0} pages @ dttw({band1:.0})",
            p_rp + kf
        ),
        (p_rp + kf) * m.dttw.eval(band1),
    );
    out.push(
        "pass1",
        CostKind::Cpu,
        format!("hash |RP_i| = {rp:.0} objects"),
        rp * m.op(CpuOp::Hash),
    );
    out.push(
        "pass1",
        CostKind::Move,
        format!("move |RP_i| = {rp:.0} objects"),
        rp * r * m.mt(MoveKind::PP),
    );
    out.push(
        "pass1",
        CostKind::Cpu,
        "page-fault overhead",
        (2.0 * p_rp + kf) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- pass 1+j: per-bucket join ----------------
    // Band: half of one bucket's span (§7.3's "half the size, in blocks,
    // of the objects that fit in the hash table").
    let band_join = (p_rs / (2.0 * kf)).max(1.0);
    out.push(
        "join",
        CostKind::DiskRead,
        format!(
            "read RS_i buckets + S_i near-sequentially: {:.0} pages @ dttr({band_join:.0})",
            p_rs + p_si
        ),
        (p_rs + p_si) * m.dttr.eval(band_join),
    );
    out.push(
        "join",
        CostKind::Cpu,
        format!("hash each RS_i object into the table: {rs:.0} ops"),
        rs * m.op(CpuOp::Hash),
    );
    out.push(
        "join",
        CostKind::Move,
        format!("join {rs:.0} × (r+sptr+s) via shared buffer"),
        rs * w.join_unit() as f64 * m.mt(MoveKind::PS),
    );
    out.push(
        "join",
        CostKind::Ctx,
        "G-buffer exchanges with Sproc_i",
        w.ctx_switches_for(rs) * m.cs,
    );
    out.push(
        "join",
        CostKind::Cpu,
        "page-fault overhead",
        (p_rs + p_si) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- setup ----------------
    let mc = &m.map_cost;
    out.push(
        "setup",
        CostKind::Setup,
        "D × (openMap R_i + openMap S_i + newMap(RS_i + RP_i) + openMap RS_i)",
        d * (mc.open_map(p_ri as u64)
            + mc.open_map(p_si as u64)
            + mc.new_map((p_rs + p_rp) as u64)
            + mc.open_map(p_rs as u64)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(m_frac: f64) -> JoinInputs {
        let r_bytes = 102_400u64 * 128;
        JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: (m_frac * r_bytes as f64) as u64,
            m_sproc: (m_frac * r_bytes as f64) as u64,
            g_buffer: 4096,
        }
    }

    #[test]
    fn thrashing_vanishes_with_ample_memory() {
        // K buckets + D current pages comfortably resident: no knee.
        let t = thrash_replacements(25_600.0, 16, 4, 4096, 128, 4000.0);
        assert!(t < 1.0, "thrash={t}");
    }

    #[test]
    fn thrashing_explodes_with_tiny_memory() {
        let t = thrash_replacements(25_600.0, 16, 4, 4096, 128, 8.0);
        assert!(t > 20_000.0, "thrash={t} should approach |R_(i,i)|");
        // Bounded by the object count.
        assert!(t <= 25_600.0 + 1e-6);
    }

    #[test]
    fn thrashing_is_monotone_in_memory() {
        let mut prev = f64::INFINITY;
        for pages in [8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0] {
            let t = thrash_replacements(25_600.0, 24, 4, 4096, 128, pages);
            assert!(t <= prev + 1e-6, "pages={pages}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn fig5c_knee_shape() {
        // The Fig. 5c curve: roughly flat at the high-memory end, rising
        // sharply at the low end.
        let m = MachineParams::waterloo96();
        let t_low = cost(&m, &inputs(0.02)).total();
        let t_mid = cost(&m, &inputs(0.05)).total();
        let t_high = cost(&m, &inputs(0.08)).total();
        assert!(t_low > t_mid && t_mid >= t_high * 0.95);
        let knee = t_low - t_mid;
        let tail = (t_mid - t_high).abs();
        assert!(
            knee > 2.0 * tail,
            "knee {knee:.1}s should dwarf tail slope {tail:.1}s"
        );
    }

    #[test]
    fn grace_beats_sort_merge_in_its_regime() {
        // Fig. 5: Grace ≈340–460 s vs sort-merge ≈500–700 s at the same
        // memory fractions.
        let m = MachineParams::waterloo96();
        for frac in [0.03, 0.05] {
            let g = cost(&m, &inputs(frac)).total();
            let sm = crate::sort_merge::cost(&m, &inputs(frac)).total();
            assert!(g < sm, "frac={frac}: grace {g:.0}s vs sort-merge {sm:.0}s");
        }
    }

    #[test]
    fn breakdown_structure() {
        let m = MachineParams::waterloo96();
        let b = cost(&m, &inputs(0.05));
        assert_eq!(b.passes(), vec!["pass0", "pass1", "join", "setup"]);
        assert!(b.total().is_finite() && b.total() > 0.0);
    }
}
