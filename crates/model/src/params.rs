//! Join-level inputs and the paper's "Parameter Choices" rules.
//!
//! Both the analytical model and the executable algorithms call these
//! choosers, so a Fig. 5 sweep compares model and experiment *at the
//! same operating point* (same `IRUN`, same `K`, …), exactly as the
//! paper's validation does.

use mmjoin_env::{EnvError, Result};

/// Size of a heap-of-pointers element (`hp` in §6.2).
pub const HEAP_PTR_SIZE: u64 = 8;
/// Per-object overhead of the in-memory Grace hash table (chain link +
/// table slot amortization), the `fuzz` of §7.2.
pub const HASH_ENTRY_OVERHEAD: u64 = 16;

/// Everything the model needs to know about one join instance.
#[derive(Clone, Copy, Debug)]
pub struct JoinInputs {
    /// `|R|`: total R-objects.
    pub r_objects: u64,
    /// `|S|`: total S-objects.
    pub s_objects: u64,
    /// `r`: R-object size in bytes.
    pub r_size: u32,
    /// `s`: S-object size in bytes.
    pub s_size: u32,
    /// Stored pointer size (`sptr`).
    pub sptr_size: u32,
    /// `D`: partitions/disks.
    pub d: u32,
    /// Measured skew `max_j |R_{i,j}| / (|R_i|/D)`.
    pub skew: f64,
    /// `M_Rproc_i` in bytes.
    pub m_rproc: u64,
    /// `M_Sproc_i` in bytes.
    pub m_sproc: u64,
    /// `G`: shared request-buffer size in bytes (§5.2 recommends `B`).
    pub g_buffer: u64,
}

impl JoinInputs {
    /// `|R_i| = |R|/D`.
    pub fn ri(&self) -> f64 {
        self.r_objects as f64 / self.d as f64
    }

    /// `|S_i| = |S|/D`.
    pub fn si(&self) -> f64 {
        self.s_objects as f64 / self.d as f64
    }

    /// Pages of one R partition for page size `b`.
    pub fn p_ri(&self, b: u64) -> f64 {
        (self.ri() * self.r_size as f64 / b as f64).ceil()
    }

    /// Pages of one S partition.
    pub fn p_si(&self, b: u64) -> f64 {
        (self.si() * self.s_size as f64 / b as f64).ceil()
    }

    /// Bytes moved through the shared buffer per joined object:
    /// `r + sptr + s` (§5.3).
    pub fn join_unit(&self) -> u64 {
        self.r_size as u64 + self.sptr_size as u64 + self.s_size as u64
    }

    /// Objects per shared-buffer batch: `⌊G / (r + sptr + s)⌋`, at least 1.
    pub fn batch_objects(&self) -> u64 {
        (self.g_buffer / self.join_unit()).max(1)
    }

    /// Context switches for fetching `n` S-objects through the shared
    /// buffer: the paper's `g(h) = 2·CS·⌈h / ⌊G/(r+sptr+s)⌋⌉` without
    /// the `CS` factor (returned as a switch count).
    pub fn ctx_switches_for(&self, n: f64) -> f64 {
        2.0 * (n / self.batch_objects() as f64).ceil()
    }
}

/// `IRUN` (§6.2): the longest run, plus its heap of pointers, that fits
/// in `M_Rproc`: `⌊M_Rproc / (r + hp)⌋`.
pub fn choose_irun(m_rproc: u64, r_size: u32) -> u64 {
    (m_rproc / (r_size as u64 + HEAP_PTR_SIZE)).max(2)
}

/// `NRUN` during all but the last merge pass (§6.2): memory is
/// deliberately under-used at three pages per run to dodge LRU's
/// mid-merge mistakes: `M_Rproc / (3B)`.
pub fn choose_nrun_abl(m_rproc: u64, page: u64) -> u64 {
    (m_rproc / (3 * page)).max(2)
}

/// `NRUN` during the last pass (§6.2): `M_Rproc / (2B)`.
pub fn choose_nrun_last(m_rproc: u64, page: u64) -> u64 {
    (m_rproc / (2 * page)).max(2)
}

/// The merge schedule implied by `IRUN`/`NRUN` (§6.3): how many merging
/// passes run, and how many runs meet in the last one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergePlan {
    /// Initial sorted runs after the run-formation pass.
    pub initial_runs: u64,
    /// `NPASS`: merging passes, *including* the final merge-join pass.
    pub npass: u64,
    /// `LRUN`: runs merged in the final pass.
    pub lrun: u64,
    /// Fan-in used during all-but-last passes.
    pub nrun_abl: u64,
}

/// Compute the merge schedule: apply `nrun_abl`-way merges until at most
/// `nrun_last` runs remain, then one final merge-join pass.
pub fn merge_plan(objects: u64, irun: u64, nrun_abl: u64, nrun_last: u64) -> Result<MergePlan> {
    if irun < 1 || nrun_abl < 2 || nrun_last < 2 {
        return Err(EnvError::InvalidConfig(format!(
            "degenerate merge plan: irun={irun} nrun_abl={nrun_abl} nrun_last={nrun_last}"
        )));
    }
    let initial_runs = objects.div_ceil(irun).max(1);
    let mut runs = initial_runs;
    let mut npass = 1u64; // the final pass always happens
    while runs > nrun_last {
        runs = runs.div_ceil(nrun_abl);
        npass += 1;
        if npass > 64 {
            return Err(EnvError::InvalidConfig(
                "merge plan does not converge".into(),
            ));
        }
    }
    Ok(MergePlan {
        initial_runs,
        npass,
        lrun: runs,
        nrun_abl,
    })
}

/// Working-set slack applied when sizing Grace buckets, mirroring the
/// `NRUN = M/(3B)` underutilization of §6.2: §7.2 observes that "even
/// this threshold memory results in thrashing, because the working set
/// for the algorithm is greater than the theoretical threshold" — so a
/// bucket plus its hash table is sized to a *third* of memory, not all
/// of it.
pub const K_MEMORY_SLACK: u64 = 3;

/// `K` (§7.2): enough Grace buckets that one bucket plus its hash-table
/// overhead (`fuzz`) fits comfortably — within `M_Rproc /`
/// [`K_MEMORY_SLACK`] — during the per-bucket join pass.
pub fn choose_k(rs_objects: u64, r_size: u32, m_rproc: u64) -> u64 {
    let per_obj = r_size as u64 + HASH_ENTRY_OVERHEAD;
    let need = rs_objects.saturating_mul(per_obj) * K_MEMORY_SLACK;
    need.div_ceil(m_rproc.max(1)).max(1)
}

/// `TSIZE` (§7.2): "small enough to avoid excessive hash-table overhead
/// … large enough to ensure short individual hash chains": about two
/// objects per chain, rounded to a power of two.
pub fn choose_tsize(bucket_objects: u64) -> u64 {
    (bucket_objects / 2).next_power_of_two().clamp(16, 1 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> JoinInputs {
        JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.05,
            m_rproc: 1 << 20,
            m_sproc: 1 << 20,
            g_buffer: 4096,
        }
    }

    #[test]
    fn partition_arithmetic() {
        let w = inputs();
        assert_eq!(w.ri(), 25_600.0);
        assert_eq!(w.p_ri(4096), 800.0);
        assert_eq!(w.p_si(4096), 800.0);
        assert_eq!(w.join_unit(), 264);
        assert_eq!(w.batch_objects(), 15);
    }

    #[test]
    fn ctx_switch_count_matches_paper_formula() {
        let w = inputs();
        // 2·ceil(n / 15)
        assert_eq!(w.ctx_switches_for(15.0), 2.0);
        assert_eq!(w.ctx_switches_for(16.0), 4.0);
        assert_eq!(w.ctx_switches_for(150.0), 20.0);
    }

    #[test]
    fn irun_uses_object_plus_heap_pointer() {
        assert_eq!(choose_irun(1 << 20, 128), (1 << 20) / 136);
        // Never degenerates below 2.
        assert_eq!(choose_irun(16, 128), 2);
    }

    #[test]
    fn nrun_underutilizes_memory() {
        let m = 120 * 4096;
        assert_eq!(choose_nrun_abl(m, 4096), 40);
        assert_eq!(choose_nrun_last(m, 4096), 60);
    }

    #[test]
    fn merge_plan_single_pass_when_few_runs() {
        let p = merge_plan(1000, 500, 10, 10).unwrap();
        assert_eq!(p.initial_runs, 2);
        assert_eq!(p.npass, 1);
        assert_eq!(p.lrun, 2);
    }

    #[test]
    fn merge_plan_multi_pass() {
        // 100 runs, fan-in 4, last-pass capacity 8:
        // 100 → 25 → 7 ≤ 8 ⇒ 2 ABL passes + final = 3.
        let p = merge_plan(10_000, 100, 4, 8).unwrap();
        assert_eq!(p.initial_runs, 100);
        assert_eq!(p.npass, 3);
        assert_eq!(p.lrun, 7);
    }

    #[test]
    fn merge_plan_monotone_in_memory() {
        // More memory (larger IRUN and fan-in) never needs more passes.
        let mut prev = u64::MAX;
        for m_pages in [8u64, 16, 32, 64, 128, 256] {
            let m = m_pages * 4096;
            let irun = choose_irun(m, 128);
            let p = merge_plan(
                25_600,
                irun,
                choose_nrun_abl(m, 4096),
                choose_nrun_last(m, 4096),
            )
            .unwrap();
            assert!(p.npass <= prev, "m_pages={m_pages}");
            prev = p.npass;
        }
    }

    #[test]
    fn merge_plan_rejects_degenerate() {
        assert!(merge_plan(100, 0, 4, 4).is_err());
        assert!(merge_plan(100, 10, 1, 4).is_err());
    }

    #[test]
    fn k_fits_bucket_in_slacked_memory() {
        let rs = 25_600u64;
        let m = 1 << 20;
        let k = choose_k(rs, 128, m);
        let bucket_bytes = rs.div_ceil(k) * (128 + HASH_ENTRY_OVERHEAD);
        assert!(bucket_bytes <= m / K_MEMORY_SLACK + (128 + HASH_ENTRY_OVERHEAD));
        // K is minimal: one fewer bucket would overflow the slacked
        // budget (unless k == 1).
        if k > 1 {
            let bigger_bucket = rs.div_ceil(k - 1) * (128 + HASH_ENTRY_OVERHEAD);
            assert!(bigger_bucket > m / K_MEMORY_SLACK);
        }
    }

    #[test]
    fn k_grows_as_memory_shrinks() {
        let rs = 25_600u64;
        let mut prev = 0;
        for pages in [512u64, 256, 128, 64, 32] {
            let k = choose_k(rs, 128, pages * 4096);
            assert!(k >= prev);
            prev = k;
        }
        assert!(prev > 50, "tiny memory needs many buckets, got {prev}");
    }

    #[test]
    fn tsize_bounds() {
        assert_eq!(choose_tsize(0), 16);
        assert_eq!(choose_tsize(100), 64);
        let t = choose_tsize(10_000);
        assert!(t.is_power_of_two() && (10_000 / 2..10_000).contains(&t));
    }
}
