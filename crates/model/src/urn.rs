//! The Johnson–Kotz urn model used for Grace's thrashing approximation.
//!
//! Paper §7.3 derives the extra I/O caused by premature page
//! replacement in pass 0 from the classical occupancy distribution
//! (Johnson & Kotz \[19, p. 110\]): the probability that exactly `k`
//! urns are empty after `n` balls land uniformly in `m` urns is
//!
//! ```text
//! Pr[X = k] = C(m,k) (1 − k/m)ⁿ Σ_{j=0}^{m−k−1} C(m−k, j) (−1)ʲ (1 − j/(m−k))ⁿ
//! ```
//!
//! which simplifies to the standard inclusion–exclusion form
//! `C(m,k) Σ_j (−1)ʲ C(m−k,j) ((m−k−j)/m)ⁿ`. The alternating sum is
//! numerically treacherous for large `n`; we evaluate term-wise in log
//! space with a shared exponent shift (signed log-sum-exp) and clamp to
//! `[0, 1]`.

/// Natural-log factorial with a thread-local memo table: the urn CDF
/// evaluates `ln C(·,·)` inside an O(m²) loop that itself sits inside
/// the thrashing model's epoch loop, so recomputing the O(n) sum each
/// time made a single Grace prediction take milliseconds.
fn ln_factorial(n: u64) -> f64 {
    thread_local! {
        static TABLE: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    TABLE.with(|t| {
        let mut t = t.borrow_mut();
        if t.is_empty() {
            t.push(0.0); // ln 0! = 0
        }
        while (t.len() as u64) <= n {
            let i = t.len() as f64;
            let last = *t.last().expect("seeded");
            t.push(last + i.ln());
        }
        t[n as usize]
    })
}

/// `ln C(n, k)`.
fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Probability that exactly `k` of `m` urns are empty after `n` balls.
///
/// ```
/// use mmjoin_model::urn::prob_empty_exactly;
/// // One ball, ten urns: exactly nine empty, always.
/// assert!((prob_empty_exactly(10, 1, 9) - 1.0).abs() < 1e-9);
/// let total: f64 = (0..=10).map(|k| prob_empty_exactly(10, 7, k)).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
pub fn prob_empty_exactly(m: u64, n: u64, k: u64) -> f64 {
    if m == 0 || k > m {
        return 0.0;
    }
    if n == 0 {
        return if k == m { 1.0 } else { 0.0 };
    }
    if k == m {
        // All empty is impossible once a ball has landed.
        return 0.0;
    }
    let rest = m - k;
    // Collect signed log-terms: ln C(m,k) + ln C(rest, j) + n·ln((rest−j)/m).
    let base = ln_choose(m, k);
    let mut terms: Vec<(f64, f64)> = Vec::with_capacity(rest as usize);
    for j in 0..rest {
        let frac = (rest - j) as f64 / m as f64;
        let ln_t = base + ln_choose(rest, j) + n as f64 * frac.ln();
        let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
        terms.push((ln_t, sign));
    }
    let max_ln = terms
        .iter()
        .map(|&(l, _)| l)
        .fold(f64::NEG_INFINITY, f64::max);
    if max_ln == f64::NEG_INFINITY {
        return 0.0;
    }
    // Compensated signed summation around the shared exponent.
    let mut sum = 0.0;
    let mut comp = 0.0;
    for (ln_t, sign) in terms {
        let v = sign * (ln_t - max_ln).exp();
        let y = v - comp;
        let t = sum + y;
        comp = (t - sum) - y;
        sum = t;
    }
    (sum * max_ln.exp()).clamp(0.0, 1.0)
}

/// Probability that **at most** `k_max` urns are empty after `n` balls
/// in `m` urns — the `p_j` of the paper's epoch argument.
pub fn prob_empty_at_most(m: u64, n: u64, k_max: u64) -> f64 {
    if m == 0 {
        return 1.0;
    }
    let k_max = k_max.min(m);
    let mut acc = 0.0;
    for k in 0..=k_max {
        acc += prob_empty_exactly(m, n, k);
    }
    acc.clamp(0.0, 1.0)
}

/// Expected number of empty urns, `m(1 − 1/m)ⁿ` — used as a sanity
/// anchor in tests and available for coarse estimates.
pub fn expected_empty(m: u64, n: u64) -> f64 {
    if m == 0 {
        return 0.0;
    }
    m as f64 * (1.0 - 1.0 / m as f64).powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one() {
        for &(m, n) in &[(1u64, 1u64), (5, 3), (10, 10), (20, 40), (64, 200)] {
            let total: f64 = (0..=m).map(|k| prob_empty_exactly(m, n, k)).sum();
            assert!((total - 1.0).abs() < 1e-8, "m={m} n={n} total={total}");
        }
    }

    #[test]
    fn zero_balls_all_empty() {
        assert_eq!(prob_empty_exactly(7, 0, 7), 1.0);
        assert_eq!(prob_empty_exactly(7, 0, 3), 0.0);
        assert_eq!(prob_empty_at_most(7, 0, 6), 0.0);
        assert_eq!(prob_empty_at_most(7, 0, 7), 1.0);
    }

    #[test]
    fn one_ball_leaves_m_minus_one_empty() {
        let p = prob_empty_exactly(10, 1, 9);
        assert!((p - 1.0).abs() < 1e-9, "p={p}");
    }

    #[test]
    fn mean_matches_expected_empty() {
        for &(m, n) in &[(10u64, 5u64), (16, 30), (40, 100)] {
            let mean: f64 = (0..=m)
                .map(|k| k as f64 * prob_empty_exactly(m, n, k))
                .sum();
            let expect = expected_empty(m, n);
            assert!(
                (mean - expect).abs() < 1e-6 * expect.max(1.0),
                "m={m} n={n}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn many_balls_push_cdf_to_one() {
        // With n ≫ m ln m, almost surely no urn is empty.
        assert!(prob_empty_at_most(16, 2000, 0) > 0.999);
        // With very few balls, "at most 0 empty" is impossible.
        assert!(prob_empty_at_most(16, 2, 0) < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_in_k() {
        let (m, n) = (32u64, 64u64);
        let mut prev = 0.0;
        for k in 0..=m {
            let c = prob_empty_at_most(m, n, k);
            assert!(c >= prev - 1e-12, "k={k}");
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-8);
    }

    #[test]
    fn large_n_is_numerically_stable() {
        // n in the tens of thousands (the paper's |R_{i,i}| scale).
        for k in 0..5 {
            let p = prob_empty_exactly(24, 25_600, k);
            assert!((0.0..=1.0).contains(&p), "k={k} p={p}");
        }
        assert!(prob_empty_at_most(24, 25_600, 24) > 0.999_999);
    }

    #[test]
    fn matches_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (m, n) = (12u64, 30u64);
        let trials = 200_000u64;
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0u64; m as usize + 1];
        for _ in 0..trials {
            let mut hit = vec![false; m as usize];
            for _ in 0..n {
                hit[rng.random_range(0..m) as usize] = true;
            }
            let empty = hit.iter().filter(|&&h| !h).count();
            counts[empty] += 1;
        }
        for k in 0..=m {
            let emp = counts[k as usize] as f64 / trials as f64;
            let theory = prob_empty_exactly(m, n, k);
            assert!(
                (emp - theory).abs() < 0.01,
                "k={k}: empirical {emp} vs theory {theory}"
            );
        }
    }
}
