//! Analytical cost of the parallel pointer-based **hybrid-hash** join —
//! the extension algorithm (paper §7's future work), modelled in the
//! §7.3 style.
//!
//! Hybrid hash is Grace with the first bucket memory-resident: a
//! fraction `f₀` of each `S` partition (sized to half the `Sproc`
//! buffer) is joined *immediately* during passes 0/1 through the shared
//! buffer, so those R-objects skip the `RS` write and re-read entirely.
//! Only the remaining `1 − f₀` of the objects take Grace's spill path.
//!
//! Cost structure relative to Grace:
//! * pass 0/1 bucket writes scale by `1 − f₀` (plus the same `+K`
//!   partial-page term and urn-model thrashing over the spill stream);
//! * immediate joins add shared-buffer moves, context switches and an
//!   `Ylru` term for the bucket-0 range of `S` (which fits the `Sproc`
//!   buffer by construction, so it costs its compulsory faults);
//! * the per-bucket join pass shrinks by `f₀` on both the `RS_i` and
//!   `S_i` sides.

use mmjoin_env::machine::MachineParams;
use mmjoin_env::{CpuOp, MoveKind};

use crate::breakdown::{CostBreakdown, CostKind};
use crate::grace::thrash_replacements;
use crate::params::{choose_k, JoinInputs};
use crate::ylru::ylru;

/// The `f₀` the implementation uses: half the Sproc buffer, as a
/// fraction of one `S` partition (clamped to 1).
pub fn f0_for(w: &JoinInputs) -> f64 {
    let part_bytes = w.si() * w.s_size as f64;
    if part_bytes <= 0.0 {
        return 0.0;
    }
    ((w.m_sproc / 2) as f64 / part_bytes).min(1.0)
}

/// The spill-bucket count for these inputs (Grace's `K` over the
/// spilled objects).
pub fn k_for(w: &JoinInputs) -> u64 {
    let rs = (w.ri() * w.skew).min(w.r_objects as f64);
    let spill = (rs * (1.0 - f0_for(w))).ceil().max(1.0) as u64;
    choose_k(spill, w.r_size, w.m_rproc)
}

/// Predict one Rproc's elapsed time for hybrid hash.
pub fn cost(m: &MachineParams, w: &JoinInputs) -> CostBreakdown {
    let b = m.page_size;
    let d = w.d as f64;
    let r = w.r_size as f64;

    // Worst-case populations, as in Grace.
    let ri = w.ri();
    let ri_i = (ri / d * w.skew).min(ri);
    let rp = (ri * w.skew * (1.0 - 1.0 / d)).clamp(0.0, ri);
    let rs = (ri * w.skew).min(w.r_objects as f64);

    let f0 = f0_for(w);
    let fs = 1.0 - f0; // spill fraction
    let k = k_for(w);
    let kf = k as f64;

    let p_ri = w.p_ri(b);
    let p_si = w.p_si(b);
    let p_rp = (rp * r / b as f64).ceil();
    let p_rs_spill = (rs * fs * r / b as f64).ceil();
    let p_ri_i_spill = (ri_i * fs * r / b as f64).ceil();
    let mem_pages = (w.m_rproc / b) as f64;
    let msproc_pages = (w.m_sproc / b) as f64;

    let mut out = CostBreakdown::default();

    // ---------------- pass 0 ----------------
    let band0 = p_ri + p_si + p_rs_spill + p_rp;
    out.push(
        "pass0",
        CostKind::DiskRead,
        format!("read R_i: {p_ri:.0} pages @ dttr({band0:.0})"),
        p_ri * m.dttr.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!("write RP_i: {p_rp:.0} pages @ dttw({band0:.0})"),
        p_rp * m.dttw.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!(
            "spill R_(i,i)·(1−f0) into K={k} buckets: {:.0} pages @ dttw({band0:.0})",
            p_ri_i_spill + kf
        ),
        (p_ri_i_spill + kf) * m.dttw.eval(band0),
    );
    let thrash = thrash_replacements(ri_i * fs, k, w.d, b, w.r_size, mem_pages);
    out.push(
        "pass0",
        CostKind::DiskWrite,
        format!("thrashing: {thrash:.0} premature replacements, extra writes"),
        thrash * m.dttw.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::DiskRead,
        format!("thrashing: {thrash:.0} premature replacements, extra re-reads"),
        thrash * m.dttr.eval(band0),
    );
    // Immediate bucket-0 joins: f0·|R_(i,i)| objects against the cached
    // S range.
    let imm0 = ri_i * f0;
    let y0 = ylru(rs * f0, (p_si * f0).max(1.0), rs * f0, msproc_pages, imm0);
    out.push(
        "pass0",
        CostKind::DiskRead,
        format!("bucket-0 S reads via Ylru: {y0:.0} faults @ dttr({band0:.0})"),
        y0 * m.dttr.eval(band0),
    );
    out.push(
        "pass0",
        CostKind::Move,
        format!("immediate join {imm0:.0} × (r+sptr+s) via shared buffer"),
        imm0 * w.join_unit() as f64 * m.mt(MoveKind::PS),
    );
    out.push(
        "pass0",
        CostKind::Ctx,
        "G-buffer exchanges for bucket-0 joins",
        w.ctx_switches_for(imm0) * m.cs,
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        format!("map {ri:.0} + hash {ri_i:.0} objects"),
        ri * m.op(CpuOp::Map) + ri_i * m.op(CpuOp::Hash),
    );
    out.push(
        "pass0",
        CostKind::Move,
        format!("move |R_i| = {ri:.0} objects within segment"),
        ri * r * m.mt(MoveKind::PP),
    );
    out.push(
        "pass0",
        CostKind::Cpu,
        "page-fault overhead",
        (p_ri + p_ri_i_spill + kf + p_rp + y0 + 2.0 * thrash) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- pass 1 ----------------
    let band1 = p_rs_spill + p_rp;
    let imm1 = rp * f0;
    out.push(
        "pass1",
        CostKind::DiskRead,
        format!("read RP_i: {p_rp:.0} pages @ dttr({band1:.0})"),
        p_rp * m.dttr.eval(band1),
    );
    out.push(
        "pass1",
        CostKind::DiskWrite,
        format!(
            "spill into RS_j buckets: {:.0} pages @ dttw({band1:.0})",
            p_rp * fs + kf
        ),
        (p_rp * fs + kf) * m.dttw.eval(band1),
    );
    let y1 = ylru(rs * f0, (p_si * f0).max(1.0), rs * f0, msproc_pages, imm1);
    out.push(
        "pass1",
        CostKind::DiskRead,
        format!("bucket-0 S reads via Ylru: {y1:.0} faults @ dttr({band1:.0})"),
        y1 * m.dttr.eval(band1),
    );
    out.push(
        "pass1",
        CostKind::Move,
        format!("immediate join {imm1:.0} × (r+sptr+s) via shared buffer"),
        imm1 * w.join_unit() as f64 * m.mt(MoveKind::PS),
    );
    out.push(
        "pass1",
        CostKind::Ctx,
        "G-buffer exchanges for bucket-0 joins",
        w.ctx_switches_for(imm1) * m.cs,
    );
    out.push(
        "pass1",
        CostKind::Cpu,
        format!("hash |RP_i| = {rp:.0} objects"),
        rp * m.op(CpuOp::Hash),
    );
    out.push(
        "pass1",
        CostKind::Move,
        format!("move |RP_i| = {rp:.0} objects"),
        rp * r * m.mt(MoveKind::PP),
    );
    out.push(
        "pass1",
        CostKind::Cpu,
        "page-fault overhead",
        (p_rp * (1.0 + fs) + kf + y1) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- spill-bucket join ----------------
    let spill_objs = rs * fs;
    let band_join = (p_rs_spill / (2.0 * kf)).max(1.0);
    out.push(
        "join",
        CostKind::DiskRead,
        format!(
            "read spilled RS_i + S_i·(1−f0): {:.0} pages @ dttr({band_join:.0})",
            p_rs_spill + p_si * fs
        ),
        (p_rs_spill + p_si * fs) * m.dttr.eval(band_join),
    );
    out.push(
        "join",
        CostKind::Cpu,
        format!("hash {spill_objs:.0} spilled objects into tables"),
        spill_objs * m.op(CpuOp::Hash),
    );
    out.push(
        "join",
        CostKind::Move,
        format!("join {spill_objs:.0} × (r+sptr+s) via shared buffer"),
        spill_objs * w.join_unit() as f64 * m.mt(MoveKind::PS),
    );
    out.push(
        "join",
        CostKind::Ctx,
        "G-buffer exchanges with Sproc_i",
        w.ctx_switches_for(spill_objs) * m.cs,
    );
    out.push(
        "join",
        CostKind::Cpu,
        "page-fault overhead",
        (p_rs_spill + p_si * fs) * m.op(CpuOp::FaultOverhead),
    );

    // ---------------- setup ----------------
    let mc = &m.map_cost;
    out.push(
        "setup",
        CostKind::Setup,
        "D × (openMap R_i + openMap S_i + newMap(RS_i + RP_i) + openMap RS_i)",
        d * (mc.open_map(p_ri as u64)
            + mc.open_map(p_si as u64)
            + mc.new_map((p_rs_spill + p_rp) as u64)
            + mc.open_map(p_rs_spill as u64)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(m_frac: f64) -> JoinInputs {
        let r_bytes = 102_400u64 * 128;
        JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: (m_frac * r_bytes as f64) as u64,
            m_sproc: (m_frac * r_bytes as f64) as u64,
            g_buffer: 4096,
        }
    }

    #[test]
    fn f0_grows_with_sproc_memory_and_caps_at_one() {
        assert!(f0_for(&inputs(0.02)) < f0_for(&inputs(0.08)));
        let mut w = inputs(0.08);
        w.m_sproc = u64::MAX / 4;
        assert_eq!(f0_for(&w), 1.0);
    }

    #[test]
    fn hybrid_beats_grace_where_memory_buys_a_real_bucket_zero() {
        // With a few percent of |R| as Sproc buffer, bucket 0 absorbs a
        // matching fraction of the spill traffic.
        let m = MachineParams::waterloo96();
        for frac in [0.04, 0.08] {
            let w = inputs(frac);
            let h = cost(&m, &w).total();
            let g = crate::grace::cost(&m, &w).total();
            assert!(h < g, "frac={frac}: hybrid {h:.1} vs grace {g:.1}");
        }
    }

    #[test]
    fn hybrid_converges_to_grace_as_memory_vanishes() {
        let m = MachineParams::waterloo96();
        let mut w = inputs(0.02);
        w.m_sproc = 4096; // one page: f0 ≈ 0
        let h = cost(&m, &w).total();
        let g = crate::grace::cost(&m, &w).total();
        assert!(
            (h - g).abs() / g < 0.15,
            "tiny f0 should approach grace: hybrid {h:.1} vs grace {g:.1}"
        );
    }

    #[test]
    fn breakdown_structure() {
        let m = MachineParams::waterloo96();
        let b = cost(&m, &inputs(0.05));
        assert_eq!(b.passes(), vec!["pass0", "pass1", "join", "setup"]);
        assert!(b.total().is_finite() && b.total() > 0.0);
    }
}
