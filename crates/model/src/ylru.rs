//! The Mackert–Lohman finite-LRU-buffer fault approximation.
//!
//! The paper (§5.3) uses the validated approximation of Mackert and
//! Lohman \[23\] to predict how many of the random S-object accesses in
//! nested loops actually fault, given the `Sproc`'s limited buffer:
//!
//! > Given a relation of `N` tuples over `t` pages, with `i` distinct
//! > key values and a `b`-page LRU buffer, if `x` key values are used to
//! > retrieve all matching tuples, then the number of page faults is
//! >
//! > ```text
//! > Ylru(N,t,i,b,x) = t(1 − qˣ)                    if x ≤ n
//! >                 = t(1 − qⁿ) + t·p(x − n)qⁿ     if x > n
//! > ```
//! >
//! > where n = max{ j : j ≤ i, t(1 − qʲ) ≤ b } and
//! > q = 1 − p = (1 − 1/max(t,i))^(N/min(t,i)).
//!
//! The steady-state term carries a factor `t·p`, not the bare `p` the
//! conference scan appears to print: `t·p ≈ N/i` is the pages touched
//! per key and `qⁿ = 1 − b/t` is the per-page miss probability once the
//! buffer holds `b` of the `t` pages, so `t·p·qⁿ` is the expected faults
//! per additional key. With the bare `p` the formula would predict ~32
//! faults for 25 600 uniform accesses through a 1-page buffer — off by
//! three orders of magnitude; the `t·p` form matches LRU simulation (see
//! the cross-validation test below) and the Mackert–Lohman semantics.

/// Evaluate `Ylru(N, t, i, b, x)`.
///
/// ```
/// use mmjoin_model::ylru;
/// // 25 600 unique keys on 800 pages through a 64-page buffer:
/// let faults = ylru(25_600.0, 800.0, 25_600.0, 64.0, 10_000.0);
/// assert!(faults > 8_000.0 && faults <= 10_000.0);
/// // A buffer covering the whole relation leaves only cold misses.
/// assert!(ylru(25_600.0, 800.0, 25_600.0, 800.0, 100_000.0) < 801.0);
/// ```
///
/// All arguments are real-valued (the paper plugs in expressions like
/// `M_Sproc/B`). Degenerate inputs are handled conservatively:
/// non-positive `t` or `x` yield 0 faults; a buffer of `b ≥ t` pages
/// caps the answer at the warm-up faults `t(1 − qˣ)`.
pub fn ylru(n_tuples: f64, t_pages: f64, i_keys: f64, b_pages: f64, x_accesses: f64) -> f64 {
    if t_pages < 1.0 || x_accesses <= 0.0 || n_tuples <= 0.0 || i_keys < 1.0 {
        return 0.0;
    }
    let t = t_pages;
    let i = i_keys;
    let big = t.max(i);
    let small = t.min(i);
    // q = (1 − 1/max(t,i))^(N/min(t,i)); p = 1 − q.
    let q = if big <= 1.0 {
        0.0
    } else {
        (1.0 - 1.0 / big).powf(n_tuples / small)
    };
    let p = 1.0 - q;
    // n = max{ j : j ≤ i, t(1 − q^j) ≤ b }.
    let n = if b_pages >= t {
        i
    } else if q <= 0.0 {
        // A single key touches more pages than the buffer holds.
        0.0
    } else {
        // t(1 − q^j) ≤ b  ⇔  q^j ≥ 1 − b/t  ⇔  j ≤ ln(1 − b/t)/ln(q).
        let frac = 1.0 - b_pages / t;
        if frac <= 0.0 {
            i
        } else {
            (frac.ln() / q.ln()).floor().clamp(0.0, i)
        }
    };
    if x_accesses <= n {
        t * (1.0 - q.powf(x_accesses))
    } else {
        t * (1.0 - q.powf(n)) + t * p * (x_accesses - n) * q.powf(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_accesses_zero_faults() {
        assert_eq!(ylru(1000.0, 100.0, 1000.0, 10.0, 0.0), 0.0);
    }

    #[test]
    fn never_exceeds_accesses_for_unique_keys() {
        // With one tuple per page per key, faults ≤ accesses.
        for &x in &[1.0, 10.0, 100.0, 1000.0] {
            let y = ylru(1000.0, 1000.0, 1000.0, 50.0, x);
            assert!(y <= x + 1e-9, "x={x} y={y}");
            assert!(y > 0.0);
        }
    }

    #[test]
    fn large_buffer_caps_at_compulsory_faults() {
        // Buffer bigger than the relation: only cold misses remain.
        let y = ylru(10_000.0, 100.0, 10_000.0, 1_000.0, 50_000.0);
        assert!(y <= 100.0 + 1e-9, "y={y}");
    }

    #[test]
    fn monotone_in_accesses() {
        let mut prev = 0.0;
        for x in 1..200 {
            let y = ylru(25_600.0, 800.0, 25_600.0, 64.0, (x * 100) as f64);
            assert!(y >= prev - 1e-9, "x={x}");
            prev = y;
        }
    }

    #[test]
    fn monotone_decreasing_in_buffer() {
        let mut prev = f64::INFINITY;
        for b in [8.0, 16.0, 64.0, 256.0, 800.0, 2000.0] {
            let y = ylru(25_600.0, 800.0, 25_600.0, b, 25_600.0);
            assert!(y <= prev + 1e-9, "b={b}: {y} > {prev}");
            prev = y;
        }
    }

    #[test]
    fn tiny_buffer_makes_most_accesses_fault() {
        // 800-page relation, 1-page buffer, uniform random accesses:
        // nearly every access faults.
        let x = 25_600.0;
        let y = ylru(25_600.0, 800.0, 25_600.0, 1.0, x);
        assert!(y > 0.9 * x, "y={y}");
    }

    /// Cross-validate against an actual LRU buffer simulation: the
    /// approximation should land within a modest relative error for a
    /// uniform access pattern (it was validated against System R traces;
    /// we accept 15%).
    #[test]
    fn matches_simulated_lru_for_uniform_access() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let t = 400u64; // pages
        let keys = 12_800u64; // objects, 32 per page
        let per_page = keys / t;
        for &b in &[20usize, 80, 200] {
            let mut rng = StdRng::seed_from_u64(9 + b as u64);
            let mut lru: Vec<u64> = Vec::new();
            let mut faults = 0u64;
            let x = 20_000u64;
            for _ in 0..x {
                let key = rng.random_range(0..keys);
                let page = key / per_page;
                if let Some(pos) = lru.iter().position(|&p| p == page) {
                    lru.remove(pos);
                } else {
                    faults += 1;
                    if lru.len() >= b {
                        lru.pop();
                    }
                }
                lru.insert(0, page);
            }
            let predicted = ylru(keys as f64, t as f64, keys as f64, b as f64, x as f64);
            let rel_err = (predicted - faults as f64).abs() / faults as f64;
            assert!(
                rel_err < 0.15,
                "b={b}: predicted {predicted}, simulated {faults}, err {rel_err}"
            );
        }
    }
}
