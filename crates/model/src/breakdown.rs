//! Itemized cost predictions.
//!
//! Every model evaluation returns a [`CostBreakdown`]: one labelled item
//! per formula term, grouped by pass. This keeps the model auditable
//! against the paper's §5.3/§6.3/§7.3 line by line, supports the
//! per-component ablations, and renders the experiment tables.

use std::fmt;

/// Category of a cost term.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CostKind {
    /// Disk read transfers (`dttr`).
    DiskRead,
    /// Disk write transfers (`dttw`).
    DiskWrite,
    /// CPU operations (`map`, `hash`, heap work).
    Cpu,
    /// Memory-to-memory transfers (`MT**`).
    Move,
    /// Context switches (`CS`).
    Ctx,
    /// Mapping setup (`newMap`/`openMap`/`deleteMap`).
    Setup,
}

impl CostKind {
    /// All categories.
    pub const ALL: [CostKind; 6] = [
        CostKind::DiskRead,
        CostKind::DiskWrite,
        CostKind::Cpu,
        CostKind::Move,
        CostKind::Ctx,
        CostKind::Setup,
    ];
}

impl fmt::Display for CostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CostKind::DiskRead => "disk-read",
            CostKind::DiskWrite => "disk-write",
            CostKind::Cpu => "cpu",
            CostKind::Move => "move",
            CostKind::Ctx => "ctx",
            CostKind::Setup => "setup",
        };
        f.write_str(s)
    }
}

/// One formula term.
#[derive(Clone, Debug)]
pub struct CostItem {
    /// Which pass the term belongs to (`"pass0"`, `"merge"`, `"setup"` …).
    pub pass: &'static str,
    /// Category.
    pub kind: CostKind,
    /// Human-readable description tying the term to the paper.
    pub label: String,
    /// Predicted seconds (per Rproc).
    pub seconds: f64,
}

/// An itemized prediction of one Rproc's elapsed time.
#[derive(Clone, Debug, Default)]
pub struct CostBreakdown {
    /// All terms.
    pub items: Vec<CostItem>,
}

impl CostBreakdown {
    /// Add one term.
    pub fn push(
        &mut self,
        pass: &'static str,
        kind: CostKind,
        label: impl Into<String>,
        seconds: f64,
    ) {
        let label = label.into();
        debug_assert!(seconds.is_finite(), "non-finite cost for {label}");
        self.items.push(CostItem {
            pass,
            kind,
            label,
            seconds,
        });
    }

    /// Total predicted seconds.
    pub fn total(&self) -> f64 {
        self.items.iter().map(|i| i.seconds).sum()
    }

    /// Total seconds of one category.
    pub fn total_kind(&self, kind: CostKind) -> f64 {
        self.items
            .iter()
            .filter(|i| i.kind == kind)
            .map(|i| i.seconds)
            .sum()
    }

    /// Total seconds of one pass.
    pub fn total_pass(&self, pass: &str) -> f64 {
        self.items
            .iter()
            .filter(|i| i.pass == pass)
            .map(|i| i.seconds)
            .sum()
    }

    /// Distinct passes, in first-appearance order.
    pub fn passes(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for item in &self.items {
            if !out.contains(&item.pass) {
                out.push(item.pass);
            }
        }
        out
    }

    /// Render a fixed-width table (used by the experiment binaries).
    pub fn table(&self) -> String {
        let mut s = String::new();
        for pass in self.passes() {
            s.push_str(&format!("{pass}:\n"));
            for item in self.items.iter().filter(|i| i.pass == pass) {
                s.push_str(&format!(
                    "  {:<10} {:<52} {:>12.4}s\n",
                    item.kind.to_string(),
                    item.label,
                    item.seconds
                ));
            }
        }
        s.push_str(&format!("  {:<63} {:>12.4}s\n", "TOTAL", self.total()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_partition_by_kind_and_pass() {
        let mut b = CostBreakdown::default();
        b.push("pass0", CostKind::DiskRead, "read Ri", 1.0);
        b.push("pass0", CostKind::Cpu, "map", 0.5);
        b.push("pass1", CostKind::DiskRead, "read RPi", 2.0);
        assert_eq!(b.total(), 3.5);
        assert_eq!(b.total_kind(CostKind::DiskRead), 3.0);
        assert_eq!(b.total_pass("pass0"), 1.5);
        assert_eq!(b.passes(), vec!["pass0", "pass1"]);
        let t = b.table();
        assert!(t.contains("read Ri") && t.contains("TOTAL"));
    }

    #[test]
    fn debug_assert_catches_nan() {
        let mut b = CostBreakdown::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.push("p", CostKind::Cpu, "bad", f64::NAN);
        }));
        if cfg!(debug_assertions) {
            assert!(result.is_err());
        }
    }
}
