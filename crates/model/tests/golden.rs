//! Golden regression values for the cost model.
//!
//! The model implements several dozen formula terms transcribed from
//! the paper; an accidental edit to any of them should fail loudly.
//! These totals were computed at known-good inputs (the §8 workload at
//! three memory fractions, default `waterloo96` machine parameters) and
//! are pinned to 0.01%. If a change to the model is *intentional*,
//! regenerate the constants and say why in the commit.

use mmjoin_env::machine::MachineParams;
use mmjoin_model::{predict, Algorithm, JoinInputs};

fn inputs(frac: f64) -> JoinInputs {
    JoinInputs {
        r_objects: 102_400,
        s_objects: 102_400,
        r_size: 128,
        s_size: 128,
        sptr_size: 8,
        d: 4,
        skew: 1.0,
        m_rproc: (frac * 102_400.0 * 128.0) as u64,
        m_sproc: (frac * 102_400.0 * 128.0) as u64,
        g_buffer: 4096,
    }
}

#[test]
fn model_totals_match_golden_values() {
    let m = MachineParams::waterloo96();
    let golden = [
        (Algorithm::NestedLoops, 0.02, 342.835615),
        (Algorithm::NestedLoops, 0.10, 236.873455),
        (Algorithm::NestedLoops, 0.40, 54.108291),
        (Algorithm::SortMerge, 0.02, 83.342776),
        (Algorithm::SortMerge, 0.10, 86.762735),
        (Algorithm::SortMerge, 0.40, 90.716873),
        (Algorithm::Grace, 0.02, 61.139904),
        (Algorithm::Grace, 0.10, 59.253112),
        (Algorithm::Grace, 0.40, 61.281165),
        (Algorithm::HybridHash, 0.02, 59.875605),
        (Algorithm::HybridHash, 0.10, 58.239671),
        (Algorithm::HybridHash, 0.40, 54.537980),
    ];
    for (alg, frac, expect) in golden {
        let got = predict(alg, &m, &inputs(frac)).total();
        assert!(
            (got - expect).abs() / expect < 1e-4,
            "{} at M/|R|={frac}: got {got:.6}, golden {expect:.6}",
            alg.name()
        );
    }
}

#[test]
fn breakdown_items_sum_to_total() {
    let m = MachineParams::waterloo96();
    for alg in Algorithm::ALL {
        let b = predict(alg, &m, &inputs(0.05));
        let sum: f64 = b.items.iter().map(|i| i.seconds).sum();
        assert!((sum - b.total()).abs() < 1e-9, "{}", alg.name());
        assert!(
            b.items.iter().all(|i| i.seconds >= 0.0),
            "{}: no negative cost terms",
            alg.name()
        );
    }
}
