//! Property tests: the model must produce finite, positive predictions
//! with non-negative terms for *any* plausible input — a cost model
//! that can emit NaN or negative seconds poisons every consumer
//! (planner, experiments) silently.

use mmjoin_env::machine::MachineParams;
use mmjoin_model::{predict, Algorithm, JoinInputs};
use proptest::prelude::*;

fn arb_inputs() -> impl Strategy<Value = JoinInputs> {
    (
        1u64..200_000,  // objects per relation (R)
        1u64..200_000,  // objects per relation (S)
        16u32..512,     // r_size
        8u32..512,      // s_size
        1u32..9,        // d
        1.0f64..8.0,    // skew
        1u64..4096,     // m_rproc pages
        1u64..4096,     // m_sproc pages
        264u64..65_536, // g buffer
    )
        .prop_map(
            |(r_o, s_o, r_size, s_size, d, skew, m_r, m_s, g)| JoinInputs {
                // Make counts divisible by d so they describe a real
                // partitioning.
                r_objects: r_o.div_ceil(d as u64) * d as u64,
                s_objects: s_o.div_ceil(d as u64) * d as u64,
                r_size,
                s_size,
                sptr_size: 8,
                d,
                skew,
                m_rproc: m_r * 4096,
                m_sproc: m_s * 4096,
                g_buffer: g,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn predictions_are_finite_positive_and_itemwise_sane(w in arb_inputs()) {
        let m = MachineParams::waterloo96();
        for alg in Algorithm::ALL {
            let b = predict(alg, &m, &w);
            let total = b.total();
            prop_assert!(total.is_finite(), "{}: total {total}", alg.name());
            prop_assert!(total > 0.0, "{}: total {total}", alg.name());
            for item in &b.items {
                prop_assert!(
                    item.seconds.is_finite() && item.seconds >= 0.0,
                    "{}: '{}' = {}",
                    alg.name(),
                    item.label,
                    item.seconds
                );
            }
        }
    }

    #[test]
    fn skew_never_reduces_synchronized_costs(w in arb_inputs()) {
        // The synchronized algorithms gate on worst-case partitions, so
        // increasing skew (all else equal) must not cheapen them.
        let m = MachineParams::waterloo96();
        let mut lo = w;
        lo.skew = 1.0;
        let mut hi = w;
        hi.skew = w.skew.max(1.0) + 1.0;
        for alg in [Algorithm::SortMerge, Algorithm::Grace] {
            let a = predict(alg, &m, &lo).total();
            let b = predict(alg, &m, &hi).total();
            prop_assert!(
                b >= a * 0.999,
                "{}: skew {} gave {b:.3} < skew 1.0's {a:.3}",
                alg.name(),
                hi.skew
            );
        }
    }
}
