//! Workspace-local stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness with criterion's macro
//! and builder surface: `criterion_group!`/`criterion_main!`,
//! `Criterion::default().sample_size(..).measurement_time(..)`,
//! `bench_function` with `iter`/`iter_batched`. Reports min/median/max
//! nanoseconds per iteration on stdout. No statistics engine, no HTML
//! reports — enough to run the workspace's microbenches and eyeball
//! regressions.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up running time before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget_per_sample: self.measurement_time.as_secs_f64() / self.sample_size as f64,
            warm_up: self.warm_up_time,
            warmed: false,
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.samples.sort_by(f64::total_cmp);
        let (min, max) = (b.samples[0], b.samples[b.samples.len() - 1]);
        let median = b.samples[b.samples.len() / 2];
        println!(
            "{name:<40} median {:>12.0} ns/iter  (min {:.0}, max {:.0}, {} samples)",
            median * 1e9,
            min * 1e9,
            max * 1e9,
            b.samples.len()
        );
        self
    }

    /// Flush any pending state (no-op here).
    pub fn final_summary(&mut self) {}

    /// Start a named group: benchmarks registered on it report as
    /// `group/name`, mirroring criterion's `benchmark_group` surface.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing the parent's config.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        self.c.bench_function(&full, f);
        self
    }

    /// End the group (no pending state to flush here).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    budget_per_sample: f64,
    warm_up: Duration,
    warmed: bool,
}

impl Bencher {
    fn warm<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.warmed {
            return;
        }
        let t0 = Instant::now();
        while t0.elapsed() < self.warm_up {
            black_box(routine());
        }
        self.warmed = true;
    }

    /// Time `routine`, repeating it until the per-sample budget is
    /// spent, and record seconds per iteration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.warm(&mut routine);
        let t0 = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed >= self.budget_per_sample {
                self.samples.push(elapsed / iters as f64);
                return;
            }
        }
    }

    /// Like [`Bencher::iter`], but with untimed per-iteration setup.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        self.warm(|| {
            let input = setup();
            routine(input)
        });
        let mut total = 0.0f64;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed().as_secs_f64();
            iters += 1;
            if total >= self.budget_per_sample {
                self.samples.push(total / iters as f64);
                return;
            }
        }
    }
}

/// Declare a group of benchmark targets with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn iter_records_samples() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![3u64, 1, 2],
                |mut v| {
                    v.sort_unstable();
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }
}
