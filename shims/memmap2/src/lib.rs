//! Workspace-local stand-in for the `memmap2` crate.
//!
//! Provides the two mapping types the workspace uses, backed directly
//! by `mmap(2)`:
//!
//! * [`MmapRaw`] — a shared read/write mapping exposed through raw
//!   pointers (callers do their own bounds checking and synchronization);
//! * [`MmapMut`] — a shared mutable mapping dereferencing to `[u8]`.
//!
//! Both unmap on drop. Mapping a zero-length file is an error, exactly
//! like the real crate on Linux (`mmap` returns `EINVAL`).

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is plain memory; synchronization of access is the
// caller's responsibility, as with the real memmap2 types.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    fn map(file: &File) -> io::Result<Mapping> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let len = len as usize;
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len.max(1),
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr as *mut u8,
            len,
        })
    }

    fn flush(&self) -> io::Result<()> {
        let rc = unsafe { libc::msync(self.ptr as *mut libc::c_void, self.len, libc::MS_SYNC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        unsafe {
            libc::munmap(self.ptr as *mut libc::c_void, self.len.max(1));
        }
    }
}

/// A shared read/write file mapping accessed through raw pointers.
pub struct MmapRaw(Mapping);

impl MmapRaw {
    /// Map the whole of `file` shared and writable.
    pub fn map_raw(file: &File) -> io::Result<MmapRaw> {
        Mapping::map(file).map(MmapRaw)
    }

    /// Base pointer of the mapping.
    pub fn as_ptr(&self) -> *const u8 {
        self.0.ptr
    }

    /// Mutable base pointer of the mapping.
    pub fn as_mut_ptr(&self) -> *mut u8 {
        self.0.ptr
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.0.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.0.len == 0
    }

    /// Synchronously flush dirty pages back to the file.
    pub fn flush(&self) -> io::Result<()> {
        self.0.flush()
    }
}

/// A shared mutable file mapping dereferencing to `[u8]`.
pub struct MmapMut(Mapping);

impl MmapMut {
    /// Map the whole of `file` shared and writable.
    ///
    /// # Safety
    ///
    /// The caller must ensure the underlying file is not truncated or
    /// concurrently modified in ways that violate Rust's aliasing rules
    /// for the mapped slice (same contract as `memmap2::MmapMut`).
    pub unsafe fn map_mut(file: &File) -> io::Result<MmapMut> {
        Mapping::map(file).map(MmapMut)
    }

    /// Synchronously flush dirty pages back to the file.
    pub fn flush(&self) -> io::Result<()> {
        self.0.flush()
    }
}

impl std::ops::Deref for MmapMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.0.ptr, self.0.len) }
    }
}

impl std::ops::DerefMut for MmapMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.0.ptr, self.0.len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2-shim-{}-{name}", std::process::id()))
    }

    #[test]
    fn mmap_mut_reads_and_writes_through() {
        let path = tmp("rw");
        let mut f = File::create(&path).unwrap();
        f.write_all(&[1u8; 8192]).unwrap();
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let mut m = unsafe { MmapMut::map_mut(&f).unwrap() };
        assert_eq!(m.len(), 8192);
        assert_eq!(m[0], 1);
        m[4096] = 42;
        m.flush().unwrap();
        drop(m);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[4096], 42);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn raw_mapping_exposes_pointers() {
        let path = tmp("raw");
        std::fs::write(&path, [7u8; 4096]).unwrap();
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let m = MmapRaw::map_raw(&f).unwrap();
        assert_eq!(m.len(), 4096);
        unsafe {
            assert_eq!(*m.as_ptr(), 7);
            *m.as_mut_ptr().add(1) = 9;
            assert_eq!(*m.as_ptr().add(1), 9);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
