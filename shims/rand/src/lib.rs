//! Workspace-local stand-in for the `rand` crate (0.9 API surface).
//!
//! Everything in the workspace draws from seeded generators only —
//! workload generation and tests need determinism, not cryptographic
//! quality — so a single xoshiro256** generator behind the `rand 0.9`
//! method names (`random`, `random_range`, `seed_from_u64`) covers the
//! whole usage. Streams produced here are stable across runs and
//! platforms; workloads regenerate bit-identically from their seeds.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an `RngCore` (the `StandardUniform`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the `SampleRange` of real rand).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Rejection sampling over the widened domain removes
                // modulo bias without needing 128-bit multiplies in the
                // common small-span case.
                let zone = u128::MAX - (u128::MAX % span);
                loop {
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if raw < zone {
                        return self.start.wrapping_add((raw % span) as $t);
                    }
                }
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end.wrapping_add(1)).sample(rng)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods over any word source.
pub trait Rng: RngCore {
    /// Draw one uniformly distributed value of an inferred type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw one value uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Draw `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — deterministic, seeded via splitmix64 like the
    /// reference implementation recommends.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator; the workspace only needs the type name.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = r.random_range(0u64..8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values drawn: {seen:?}");
        for _ in 0..1000 {
            let v = r.random_range(5u32..6);
            assert_eq!(v, 5);
            let f = r.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        // Full-domain inclusive range must not overflow.
        let _ = r.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[r.random_range(0usize..10)] += 1;
        }
        for c in counts {
            let expect = n as f64 / 10.0;
            assert!((c as f64 - expect).abs() < expect * 0.1, "{counts:?}");
        }
    }
}
