//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module's unbounded MPSC channel is provided —
//! the single shape the workspace uses (one receiver per Sproc service
//! thread, cloned senders). Backed by `std::sync::mpsc`, which has the
//! same `send`/`recv`/disconnect semantics for this usage.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_and_disconnect() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err(), "all senders dropped closes channel");
    }
}
