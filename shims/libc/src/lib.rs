//! Workspace-local stand-in for the `libc` crate.
//!
//! Declares exactly the memory-mapping symbols and constants the
//! `mmjoin-mmstore` crate uses, with Linux values. The process already
//! links the system C library through std, so plain `extern "C"`
//! declarations resolve against it.

#![allow(non_camel_case_types)]

pub use std::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_long = i64;
pub type c_uint = u32;
pub type off_t = i64;
pub type size_t = usize;

/// Pages may not be accessed.
pub const PROT_NONE: c_int = 0x0;
/// Pages may be read.
pub const PROT_READ: c_int = 0x1;
/// Pages may be written.
pub const PROT_WRITE: c_int = 0x2;

/// Private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 0x02;
/// Updates are visible to other mappings of the same file.
pub const MAP_SHARED: c_int = 0x01;
/// Mapping is not backed by any file.
pub const MAP_ANONYMOUS: c_int = 0x20;
/// Do not reserve swap space for this mapping.
pub const MAP_NORESERVE: c_int = 0x4000;
/// Place the mapping exactly at the given address, replacing overlaps.
pub const MAP_FIXED: c_int = 0x10;
/// Like `MAP_FIXED`, but fail instead of replacing an existing mapping.
pub const MAP_FIXED_NOREPLACE: c_int = 0x100000;
/// `mmap`'s error return.
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

/// Synchronous `msync`.
pub const MS_SYNC: c_int = 4;
/// Asynchronous `msync`.
pub const MS_ASYNC: c_int = 1;

/// `sysconf` selector for the VM page size (Linux value).
pub const _SC_PAGESIZE: c_int = 30;

/// Termination request (`kill -TERM`).
pub const SIGTERM: c_int = 15;
/// Interactive interrupt (`^C`).
pub const SIGINT: c_int = 2;

/// Signal disposition: a handler address, `SIG_DFL` (0) or `SIG_IGN`
/// (1).
pub type sighandler_t = usize;

/// `signal`'s error return.
pub const SIG_ERR: sighandler_t = usize::MAX;

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn msync(addr: *mut c_void, len: size_t, flags: c_int) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(ps >= 4096, "page size {ps}");
        assert_eq!(ps & (ps - 1), 0, "page size is a power of two");
    }

    #[test]
    fn signal_installs_and_restores_a_handler() {
        extern "C" fn noop(_: c_int) {}
        let noop_addr = noop as *const () as sighandler_t;
        unsafe {
            let prev = signal(SIGTERM, noop_addr);
            assert_ne!(prev, SIG_ERR);
            let back = signal(SIGTERM, prev);
            assert_eq!(back, noop_addr);
        }
    }

    #[test]
    fn anonymous_mapping_roundtrip() {
        unsafe {
            let len = 2 * 4096usize;
            let p = mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 0xAB;
            assert_eq!(*(p as *const u8), 0xAB);
            assert_eq!(munmap(p, len), 0);
        }
    }
}
