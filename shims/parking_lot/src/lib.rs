//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `parking_lot` API the workspace uses —
//! `Mutex` and `RwLock` with non-poisoning guards — implemented on top
//! of the std primitives. A poisoned std lock means a panic already
//! happened while the lock was held; recovering the data (as
//! `parking_lot` would, having no poisoning at all) is the matching
//! behaviour.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
