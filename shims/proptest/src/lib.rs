//! Workspace-local stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), [`Strategy`] for integer/float ranges,
//! strategy tuples, [`collection::vec`], [`bool::ANY`] and
//! [`Strategy::prop_map`], plus `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberate for a hermetic build:
//! inputs are drawn from a generator seeded by the test's module path
//! and name (every run explores the same sequence, so failures
//! reproduce immediately), and there is no shrinking — the failing
//! case prints as-is via the assertion message.

use rand::{Rng, SeedableRng, StdRng};

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic per-test generator: seeded from the test's full name
/// so distinct properties explore distinct sequences, reproducibly.
pub fn test_rng(test_name: &str) -> TestRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec`s of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual open import: strategy machinery plus the macros.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Assert inside a property; failure reports the condition.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let ($($arg,)+) =
                    ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    (cfg = ($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_rng("shim::ranges");
        let strat = (1u64..10, 0i32..5, 0.0f64..1.0);
        for _ in 0..1000 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!((0..5).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_rng("shim::vec");
        let strat = crate::collection::vec((0u64..32, crate::bool::ANY), 0..400);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 400);
            assert!(v.iter().all(|&(x, _)| x < 32));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_rng("shim::map");
        let strat = (1u64..5).prop_map(|v| v * 100);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((100..500).contains(&v) && v % 100 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(0u64..1000, 1..50);
        let a: Vec<u64> = strat.generate(&mut crate::test_rng("same"));
        let b: Vec<u64> = strat.generate(&mut crate::test_rng("same"));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: doc comments, multiple args, trailing comma.
        #[test]
        fn macro_roundtrip(
            x in 0u64..100,
            pair in (0u32..4, 0.0f64..2.0),
        ) {
            prop_assert!(x < 100);
            prop_assert_eq!(pair.0 as u64 / 4, 0);
        }

        #[test]
        fn second_property_in_same_block(v in crate::collection::vec(0u64..7, 1..20)) {
            prop_assert!(!v.is_empty() && v.iter().all(|&x| x < 7));
        }
    }
}
