#!/usr/bin/env python3
"""Emit the key-path skeleton of a JSON document, one path per line.

Used by CI to diff the *shape* of the benchmark JSON artifacts in
`results/` against the checked-in goldens in `results/schemas/`, so a
field rename or removal fails the build while value changes (and
value-type wobbles such as a model seconds field being null on one
machine and a float on another) do not.

Paths are dotted object keys; array elements collapse to `[]` (every
element contributes its paths, so heterogeneous arrays union their
shapes). Output is sorted and deduplicated, hence diff-stable.

Usage: json_schema.py FILE.json
"""

import json
import sys


def walk(value, prefix, out):
    if isinstance(value, dict):
        if not value:
            out.add(prefix + "{}")
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else key
            walk(child, path, out)
    elif isinstance(value, list):
        if not value:
            out.add(prefix + "[]")
        for child in value:
            walk(child, prefix + "[]", out)
    else:
        out.add(prefix)


def schema(path):
    with open(path) as f:
        doc = json.load(f)
    out = set()
    walk(doc, "", out)
    return sorted(out)


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    for line in schema(sys.argv[1]):
        print(line)


if __name__ == "__main__":
    main()
