//! CAD assembly explosion on the **real** memory-mapped store.
//!
//! The paper motivates single-level stores with applications like
//! computer-aided design (§1): a design holds millions of component
//! instances, each referencing its part master by pointer. Joining
//! `instances ⋈ part_masters` is exactly a pointer-based join — and
//! standard parts (screws, washers) are referenced far more often than
//! custom ones, so the pointer distribution is Zipf-skewed.
//!
//! This example runs on `MmapEnv`: real mmap-ed files under a
//! temporary directory, real Rproc/Sproc threads, wall-clock timing.
//!
//! ```sh
//! cargo run --release -p mmjoin --example cad_assembly
//! ```

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};

fn main() {
    let root = std::env::temp_dir().join(format!("mmjoin-cad-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let d = 4;
    let env = MmapEnv::new(MmapEnvConfig {
        root: root.clone(),
        num_disks: d,
        page_size: 4096,
    })
    .expect("environment builds");

    // 200 000 component instances (R) over 50 000 part masters (S);
    // popular parts dominate (Zipf θ = 0.9).
    let workload = WorkloadSpec {
        rel: RelConfig {
            r_size: 128, // instance: transform matrix + the part pointer
            s_size: 256, // part master: geometry summary, attributes
            d,
            r_objects: 200_000,
            s_objects: 50_000,
        },
        dist: PointerDist::Zipf { theta: 0.9 },
        seed: 42,
        prefix: String::new(),
    };
    let rels = build(&env, &workload).expect("assembly loads");

    println!("CAD assembly explosion on the real memory-mapped store");
    println!(
        "  {} component instances over {} part masters, D = {d} disks",
        workload.rel.r_objects, workload.rel.s_objects
    );
    println!("  store root: {} (one directory per disk)", root.display());
    println!("  measured pointer skew: {:.2}\n", rels.skew);

    let spec = JoinSpec::new(1 << 22, 1 << 22).with_mode(ExecMode::Threaded);
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "algorithm", "pairs", "wall time", "S batches"
    );
    for alg in [Algo::Grace, Algo::SortMerge, Algo::NestedLoops] {
        let spec = spec.clone().with_tag(alg.name());
        let out = join(&env, &rels, alg, &spec).expect("join runs");
        verify(&out, &rels).expect("explosion matches the oracle");
        let batches: u64 = out.stats.procs.iter().map(|p| p.s_batches).sum();
        println!(
            "{:<14} {:>10} {:>10.3}s {:>12}",
            alg.name(),
            out.pairs,
            out.elapsed,
            batches
        );
    }

    println!("\nEvery instance matched its part master; the join results were");
    println!("identical across algorithms. The relation files remain ordinary");
    println!("files on disk — reopenable by a later session with no load step.");
    let _ = std::fs::remove_dir_all(&root);
}
