//! Geographic overlay under memory pressure, on the simulator.
//!
//! A geographic information system (another of the paper's §1 target
//! applications) joins a large table of sensor observations (R) against
//! the region polygons they fall in (S), referenced by pointer. GIS
//! servers share memory with everything else on the machine, so the
//! interesting question is the one Fig. 5 asks: *how does each join
//! degrade as its memory shrinks?*
//!
//! ```sh
//! cargo run --release -p mmjoin --example gis_overlay
//! ```

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{SimConfig, SimEnv};

fn main() {
    let d = 4;
    let workload = WorkloadSpec {
        rel: RelConfig {
            r_size: 64,  // observation: position, value, region pointer
            s_size: 512, // region: bounding box + polygon summary
            d,
            r_objects: 120_000,
            s_objects: 12_000,
        },
        dist: PointerDist::Uniform,
        seed: 11,
        prefix: String::new(),
    };
    let r_bytes = workload.rel.r_objects * workload.rel.r_size as u64;

    println!("GIS overlay: 120k observations ⋈ 12k regions, shrinking memory\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14}   winner",
        "M (pages)", "nested-loops", "sort-merge", "grace"
    );
    for frac in [0.4, 0.2, 0.1, 0.05, 0.02] {
        let pages = (((frac * r_bytes as f64) as u64) / 4096).max(6) as usize;
        let mut times = Vec::new();
        for alg in [Algo::NestedLoops, Algo::SortMerge, Algo::Grace] {
            let mut cfg = SimConfig::waterloo96(d);
            cfg.rproc_pages = pages;
            cfg.sproc_pages = pages;
            let env = SimEnv::new(cfg).expect("config is valid");
            let rels = build(&env, &workload).expect("workload builds");
            let spec = JoinSpec::new(pages as u64 * 4096, pages as u64 * 4096)
                .with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).expect("join runs");
            verify(&out, &rels).expect("overlay matches the oracle");
            times.push((alg, out.elapsed));
        }
        let winner = times
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("three entries");
        println!(
            "{:>10} {:>13.1}s {:>13.1}s {:>13.1}s   {}",
            pages,
            times[0].1,
            times[1].1,
            times[2].1,
            winner.0.name()
        );
    }

    println!("\nAs memory shrinks, nested loops' random region lookups fall off a");
    println!("cliff while Grace degrades gently — the regime structure behind the");
    println!("paper's Fig. 5, and the reason its model matters to an optimizer.");
}
