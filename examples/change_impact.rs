//! Change-impact analysis over a persistent design graph — the "graph
//! data structures" leg of the paper's §1 claim, in the CAD setting
//! that motivates it: when a part is revised, which assemblies must be
//! re-validated?
//!
//! The dependency graph (edges point from a part to the assemblies
//! using it) lives in a memory-mapped segment as raw linked pointers.
//! Session 1 builds it; session 2 maps it back and runs reachability
//! queries directly over the stored pointers — no load, no
//! deserialization, and (when the fixed base is available) no pointer
//! fix-up at all.
//!
//! ```sh
//! cargo run --release -p mmjoin --example change_impact
//! ```

use std::time::Instant;

use mmjoin_mmstore::{NodeRef, PersistentGraph, Placement, Segment, SegmentArena};

fn main() {
    let dir = std::env::temp_dir().join(format!("mmjoin-impact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("design.seg");
    let _ = std::fs::remove_file(&path);

    // A layered product structure: 10 000 base parts feed 1 000
    // sub-assemblies feed 100 assemblies feed 10 products.
    let layers = [10_000u64, 1_000, 100, 10];

    // ---- session 1: build ----
    {
        let arena = SegmentArena::reserve_default().expect("arena");
        let mut seg = Segment::create(&arena, &path, 64 << 20).expect("segment");
        let mut g = PersistentGraph::new(&mut seg).expect("graph");
        let t0 = Instant::now();
        let mut prev: Vec<NodeRef> = Vec::new();
        let mut id = 0u64;
        let mut edges = 0u64;
        for (level, &count) in layers.iter().enumerate() {
            let nodes: Vec<NodeRef> = (0..count)
                .map(|_| {
                    id += 1;
                    g.add_node(id).expect("node")
                })
                .collect();
            if level > 0 {
                // Each lower-level part is used by one upper node
                // (deterministic fan-in).
                for (k, &part) in prev.iter().enumerate() {
                    let parent = nodes[k % nodes.len()];
                    g.add_edge(part, parent).expect("edge");
                    edges += 1;
                }
            }
            prev = nodes;
        }
        println!(
            "session 1: built {} nodes / {edges} edges in {:.2?} ({} KB)",
            layers.iter().sum::<u64>(),
            t0.elapsed(),
            seg.allocated() / 1024
        );
        seg.flush().expect("msync");
    }

    // ---- session 2: reopen and query ----
    {
        let arena = SegmentArena::reserve_default().expect("arena");
        let mut seg = Segment::open(&arena, &path).expect("reopen");
        if seg.placement() == Placement::Relocated {
            let fixed = PersistentGraph::relocate(&mut seg).expect("relocate");
            println!("session 2: relocated; patched {fixed} pointers");
        } else {
            println!("session 2: exactly positioned — stored pointers used as-is");
        }
        let g = PersistentGraph::new(&mut seg).expect("graph");
        // The directory is most-recent-first, so base parts sit at the
        // tail of the node list.
        let nodes = g.nodes();
        let t0 = Instant::now();
        let mut total_impact = 0usize;
        let queries = 200;
        for q in 0..queries {
            let part = nodes[nodes.len() - 1 - q * 37];
            // Everything reachable from a base part must be re-validated.
            total_impact += g.reachable(part).len() - 1;
        }
        println!(
            "session 2: {queries} impact queries in {:.2?} (avg {:.1} affected nodes)",
            t0.elapsed(),
            total_impact as f64 / queries as f64
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nPointer-chasing workloads are where swizzling would hurt most —");
    println!("every hop here dereferences a stored address unchanged (paper §2.1).");
}
