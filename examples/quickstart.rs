//! Quickstart: build a workload, run all three parallel pointer-based
//! join algorithms on the simulated memory-mapped machine, verify each
//! against the generator's oracle, and print the measured costs next to
//! the analytical model's predictions.
//!
//! ```sh
//! cargo run --release -p mmjoin --example quickstart
//! ```

use mmjoin::{inputs_for, join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_model::predict;
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{calibrated_params, DiskParams, SimConfig, SimEnv};

fn main() {
    // A machine shaped like the paper's test bed: 4 disks, 4 KB pages,
    // and a 160-page (640 KB) memory budget per process.
    let pages = 160usize;
    let machine = calibrated_params(&DiskParams::waterloo96()).expect("calibration runs");
    let mut cfg = SimConfig::waterloo96(4);
    cfg.machine = machine.clone();
    cfg.rproc_pages = pages;
    cfg.sproc_pages = pages;

    // Two relations of 40 000 objects; every R-object carries a virtual
    // pointer to one S-object — the join attribute.
    let workload = WorkloadSpec {
        rel: RelConfig {
            r_size: 128,
            s_size: 128,
            d: 4,
            r_objects: 40_000,
            s_objects: 40_000,
        },
        dist: PointerDist::Uniform,
        seed: 7,
        prefix: String::new(),
    };

    println!("mmjoin quickstart — pointer-based joins on a simulated");
    println!("memory-mapped machine (4 disks, {pages}-page budgets)\n");

    let spec =
        JoinSpec::new(pages as u64 * 4096, pages as u64 * 4096).with_mode(ExecMode::Sequential);

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "algorithm", "pairs", "sim time", "model time", "faults-r", "faults-w"
    );
    for alg in Algo::ALL {
        let env = SimEnv::new(cfg.clone()).expect("config is valid");
        let rels = build(&env, &workload).expect("workload builds");
        let out = join(&env, &rels, alg, &spec).expect("join runs");
        verify(&out, &rels).expect("output matches the oracle");
        let model = alg
            .modelled()
            .map(|a| {
                format!(
                    "{:.1}s",
                    predict(a, &machine, &inputs_for(&rels, &spec)).total()
                )
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<14} {:>10} {:>11.1}s {:>12} {:>10} {:>10}",
            alg.name(),
            out.pairs,
            out.elapsed,
            model,
            out.stats.total_read_faults(),
            out.stats.total_write_backs(),
        );
    }

    println!("\nEvery algorithm produced the identical join (the oracle checksum");
    println!("verified), at very different simulated costs — the paper's point.");
}
