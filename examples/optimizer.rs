//! The model as a query optimizer — the use the paper names in §1:
//! "a quantitative model is an essential tool for subsystems such as a
//! query optimizer."
//!
//! For a grid of memory budgets, the planner evaluates the analytical
//! cost of each algorithm and picks a winner *without running anything*;
//! we then execute all three on the simulator and check whether the
//! planner's choice was actually (near-)optimal.
//!
//! ```sh
//! cargo run --release -p mmjoin --example optimizer
//! ```

use mmjoin::{choose, inputs_for, join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{calibrated_params, DiskParams, SimConfig, SimEnv};

fn main() {
    let d = 4;
    let workload = WorkloadSpec {
        rel: RelConfig {
            r_size: 128,
            s_size: 128,
            d,
            r_objects: 60_000,
            s_objects: 60_000,
        },
        dist: PointerDist::Uniform,
        seed: 3,
        prefix: String::new(),
    };
    let r_bytes = workload.rel.r_objects * workload.rel.r_size as u64;
    let machine = calibrated_params(&DiskParams::waterloo96()).expect("calibration runs");

    println!("Model-driven join planning (predict first, then measure)\n");
    println!(
        "{:>7} {:>14} {:>12} | {:>12} {:>14} {:>8}",
        "M/|R|", "planner picks", "predicted", "measured", "actual best", "regret"
    );

    let mut planned_total = 0.0;
    let mut oracle_total = 0.0;
    for frac in [0.02, 0.04, 0.08, 0.15, 0.3, 0.5] {
        let pages = (((frac * r_bytes as f64) as u64) / 4096).max(6);
        let spec = JoinSpec::new(pages * 4096, pages * 4096).with_mode(ExecMode::Sequential);

        // Plan from statistics alone.
        let mut cfg = SimConfig::waterloo96(d);
        cfg.machine = machine.clone();
        cfg.rproc_pages = pages as usize;
        cfg.sproc_pages = pages as usize;
        let env = SimEnv::new(cfg.clone()).expect("valid config");
        let rels = build(&env, &workload).expect("workload builds");
        let plan = choose(&machine, &inputs_for(&rels, &spec));

        // Measure every algorithm for the comparison.
        let mut measured = Vec::new();
        for alg in [
            Algo::NestedLoops,
            Algo::SortMerge,
            Algo::Grace,
            Algo::HybridHash,
        ] {
            let env = SimEnv::new(cfg.clone()).expect("valid config");
            let rels = build(&env, &workload).expect("workload builds");
            let out = join(&env, &rels, alg, &spec).expect("join runs");
            verify(&out, &rels).expect("oracle");
            measured.push((alg, out.elapsed));
        }
        let picked: Algo = plan.algorithm.into();
        let picked_time = measured
            .iter()
            .find(|(a, _)| *a == picked)
            .expect("planned algorithm was measured")
            .1;
        let best = measured
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        planned_total += picked_time;
        oracle_total += best.1;
        println!(
            "{:>7.2} {:>14} {:>11.1}s | {:>11.1}s {:>9.1}s ({}) {:>6.1}%",
            frac,
            picked.name(),
            plan.predicted_seconds(),
            picked_time,
            best.1,
            best.0.name(),
            (picked_time / best.1 - 1.0) * 100.0
        );
    }
    println!(
        "\nplanner total {planned_total:.1}s vs perfect-hindsight total {oracle_total:.1}s \
         ({:+.1}% regret)",
        (planned_total / oracle_total - 1.0) * 100.0
    );
}
