//! The single-level store itself: build a pointer-based B-Tree index in
//! a persistent segment, "restart the process" (drop every mapping),
//! and search it again with zero deserialization — the µDatabase claim
//! the paper's introduction rests on (§1, §2.1).
//!
//! ```sh
//! cargo run --release -p mmjoin --example persistent_index
//! ```

use std::time::Instant;

use mmjoin_mmstore::{PersistentBTree, Placement, Segment, SegmentArena};

fn main() {
    let dir = std::env::temp_dir().join(format!("mmjoin-index-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("orders.seg");
    let _ = std::fs::remove_file(&path);
    let n: u64 = 200_000;

    // ---- session 1: build the index ----
    {
        let arena = SegmentArena::reserve_default().expect("arena");
        let mut seg = Segment::create(&arena, &path, 64 << 20).expect("segment");
        let mut index = PersistentBTree::new(&mut seg).expect("tree");
        let t0 = Instant::now();
        for i in 0..n {
            // order-id -> customer-id
            let key = (i * 2_654_435_761) % 10_000_019;
            index.insert(key, i).expect("insert");
        }
        println!(
            "session 1: inserted {n} orders in {:.2?} (segment {} KB used)",
            t0.elapsed(),
            seg.allocated() / 1024
        );
        seg.flush().expect("msync");
    } // unmapped: "process exits"

    // ---- session 2: reopen and search ----
    {
        let arena = SegmentArena::reserve_default().expect("arena");
        let t0 = Instant::now();
        let mut seg = Segment::open(&arena, &path).expect("reopen");
        match seg.placement() {
            Placement::ExactlyPositioned => {
                println!(
                    "session 2: mapped back at {:#x} in {:.2?} — pointers valid as stored, \
                     zero fix-up",
                    seg.base(),
                    t0.elapsed()
                );
            }
            Placement::Relocated => {
                let fixed = PersistentBTree::relocate(&mut seg).expect("relocate");
                println!(
                    "session 2: fixed base unavailable; relocated and patched {fixed} \
                     child pointers (the cost exact positioning exists to avoid)"
                );
            }
        }
        let index = PersistentBTree::new(&mut seg).expect("tree");
        let t0 = Instant::now();
        let mut hits = 0u64;
        for i in (0..n).step_by(37) {
            let key = (i * 2_654_435_761) % 10_000_019;
            assert_eq!(index.get(key), Some(i), "index intact after restart");
            hits += 1;
        }
        println!(
            "session 2: {hits} point lookups straight off the mapping in {:.2?}",
            t0.elapsed()
        );
        println!("           total keys indexed: {}", index.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nNo load phase, no serialization: the file *is* the index.");
}
