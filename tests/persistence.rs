//! Persistence and exact-positioning guarantees of the memory-mapped
//! store: data written through one environment/segment session is
//! intact in the next, and pointer-based structures come back usable —
//! with zero pointer work when exact positioning holds, and with an
//! explicit, checked relocation pass when it does not (paper §2.1).

use std::path::PathBuf;

use mmjoin_env::{DiskId, Env, FileOps, ProcId};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig, PersistentList, Placement, Segment, SegmentArena};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mmjoin-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn env_files_survive_process_style_reopen() {
    let root = tmpdir("env");
    let pattern: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    {
        let env = MmapEnv::new(MmapEnvConfig {
            root: root.clone(),
            num_disks: 2,
            page_size: 4096,
        })
        .unwrap();
        let f = env
            .create_file(ProcId(0), "data", DiskId(1), pattern.len() as u64)
            .unwrap();
        f.write_at(ProcId(0), 0, &pattern).unwrap();
        // Dropping the env unmaps everything (simulating process exit).
    }
    let on_disk = std::fs::read(root.join("disk1").join("data")).unwrap();
    assert_eq!(&on_disk[..pattern.len()], &pattern[..]);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn segment_data_and_allocator_survive_sessions() {
    let root = tmpdir("seg");
    let path = root.join("store.seg");
    let allocated;
    {
        let arena = SegmentArena::reserve_default().unwrap();
        let mut seg = Segment::create(&arena, &path, 1 << 20).unwrap();
        let off = seg.alloc(1024, 8).unwrap();
        let start = (off - mmjoin_mmstore::HEADER_SIZE) as usize;
        seg.data_mut()[start..start + 4].copy_from_slice(b"abcd");
        seg.set_root(off);
        allocated = seg.allocated();
        seg.flush().unwrap();
    }
    {
        let arena = SegmentArena::reserve_default().unwrap();
        let seg = Segment::open(&arena, &path).unwrap();
        assert_eq!(seg.allocated(), allocated, "bump pointer persisted");
        let off = seg.root();
        let start = (off - mmjoin_mmstore::HEADER_SIZE) as usize;
        assert_eq!(&seg.data()[start..start + 4], b"abcd");
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn exact_positioning_makes_raw_pointers_portable() {
    let root = tmpdir("exact");
    let path = root.join("ptrs.seg");
    {
        let arena = SegmentArena::reserve_default().unwrap();
        if !arena.at_fixed_base() {
            // Another mapping owns the fixed base in this test process;
            // the relocation test below covers the fallback path.
            return;
        }
        let mut seg = Segment::create(&arena, &path, 1 << 16).unwrap();
        let mut list = PersistentList::new(&mut seg).unwrap();
        for v in 0..500u64 {
            list.push(v * 3).unwrap();
        }
        seg.flush().unwrap();
    }
    {
        let arena = SegmentArena::reserve_default().unwrap();
        assert!(arena.at_fixed_base());
        let mut seg = Segment::open(&arena, &path).unwrap();
        assert_eq!(seg.placement(), Placement::ExactlyPositioned);
        assert_eq!(seg.relocation_delta(), 0);
        // Zero pointer work: the list walks immediately.
        let list = PersistentList::new(&mut seg).unwrap();
        let vals = list.values();
        assert_eq!(vals.len(), 500);
        assert_eq!(vals[0], 499 * 3);
        assert_eq!(vals[499], 0);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn relocation_path_is_detected_and_repairable() {
    let root = tmpdir("reloc");
    let path = root.join("moved.seg");
    {
        let arena = SegmentArena::reserve(0, 1 << 26).unwrap(); // kernel-chosen base
        let mut seg = Segment::create(&arena, &path, 1 << 16).unwrap();
        let mut list = PersistentList::new(&mut seg).unwrap();
        for v in 0..64u64 {
            list.push(v).unwrap();
        }
        seg.flush().unwrap();
    }
    {
        let arena = SegmentArena::reserve(0, 1 << 26).unwrap();
        let mut seg = Segment::open(&arena, &path).unwrap();
        if seg.placement() == Placement::Relocated {
            // Using the structure before relocating is refused.
            assert!(PersistentList::new(&mut seg).is_err());
            let fixed = PersistentList::relocate(&mut seg).unwrap();
            assert_eq!(fixed, 63, "every non-sentinel link patched");
        }
        let list = PersistentList::new(&mut seg).unwrap();
        assert_eq!(list.len(), 64);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn relation_files_reload_after_reopen() {
    use mmjoin_relstore::{build, r_key, PointerDist, RelConfig, WorkloadSpec};
    let root = tmpdir("rels");
    let w = WorkloadSpec {
        rel: RelConfig {
            r_size: 64,
            s_size: 64,
            d: 2,
            r_objects: 1_000,
            s_objects: 1_000,
        },
        dist: PointerDist::Uniform,
        seed: 8,
        prefix: String::new(),
    };
    {
        let env = MmapEnv::new(MmapEnvConfig {
            root: root.clone(),
            num_disks: 2,
            page_size: 4096,
        })
        .unwrap();
        build(&env, &w).unwrap();
    }
    // The relation partitions are ordinary files a later session can
    // read back; check an R-object decodes to its generated key.
    let raw = std::fs::read(root.join("disk1").join("R_1")).unwrap();
    let key = r_key(&raw[0..64]);
    assert_eq!(key, 500, "first object of partition 1 has key |R|/D");
    std::fs::remove_dir_all(&root).unwrap();
}
