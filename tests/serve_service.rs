//! End-to-end test of the join service on the simulator: many
//! concurrent jobs over a global budget smaller than their combined
//! footprint, under both admission policies.

use std::collections::BTreeMap;

use mmjoin_serve::{AdmissionPolicy, JobRequest, ServeConfig, Service, PAGE};

/// A mixed batch of 10 jobs: different sizes, memories, distributions.
/// Each job's footprint fits the budget alone; together they exceed it
/// several times over, so the queue and the budget gate are exercised.
fn batch() -> Vec<JobRequest> {
    (0u64..10)
        .map(|i| {
            let d = if i % 2 == 0 { 2 } else { 4 };
            let mut req = JobRequest::new(
                400 * d as u64 + 200 * i * d as u64,
                if i % 3 == 0 { 32 } else { 64 },
                d,
                4 + 2 * (i % 4),
                100 + i,
            );
            req.name = format!("job{i}");
            if i % 3 == 1 {
                req.workload.dist = mmjoin_relstore::PointerDist::Zipf { theta: 0.6 };
            }
            req
        })
        .collect()
}

/// Run the whole batch under one policy; return id → (pairs, checksum).
fn run_batch(policy: AdmissionPolicy, budget_pages: u64) -> BTreeMap<u64, (u64, u64)> {
    let svc = Service::start(ServeConfig::sim(budget_pages * PAGE, 4).with_policy(policy)).unwrap();
    let batch = batch();
    let combined: u64 = batch.iter().map(JobRequest::footprint).sum();
    assert!(
        combined > budget_pages * PAGE,
        "test must oversubscribe the budget (combined {combined} B)"
    );
    let mut ids = Vec::new();
    for req in batch {
        ids.push(svc.submit(req).expect("every job fits the budget alone"));
    }
    let (results, stats) = svc.finish();

    // Every job completed with a verified result — no starvation, no
    // failures — and the reservation high-water mark respected the
    // budget throughout.
    assert_eq!(results.len(), ids.len());
    for r in &results {
        assert!(r.error.is_none(), "job {}: {:?}", r.id, r.error);
        assert!(r.verified, "job {} failed verification", r.id);
        assert!(r.pairs > 0);
        assert!(r.predicted_seconds > 0.0);
    }
    assert_eq!(stats.completed, ids.len() as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.in_flight(), 0);
    assert!(
        stats.peak_budget_bytes <= budget_pages * PAGE,
        "peak {} exceeds budget {}",
        stats.peak_budget_bytes,
        budget_pages * PAGE
    );
    assert!(stats.peak_budget_bytes > 0);

    results
        .into_iter()
        .map(|r| (r.id, (r.pairs, r.checksum)))
        .collect()
}

#[test]
fn oversubscribed_batch_completes_under_both_policies() {
    // Largest single footprint: 10 pages × 4 disks = 40 pages; combined
    // footprints are several hundred pages. 48 pages admits at most a
    // few jobs at a time.
    let fifo = run_batch(AdmissionPolicy::Fifo, 48);
    let spf = run_batch(AdmissionPolicy::ShortestPredicted, 48);

    // Admission order must not change what any join computes: same ids,
    // same pairs, same checksums.
    assert_eq!(fifo, spf);
}

/// ISSUE acceptance: the serve batch under a nonzero fault spec with a
/// fixed seed completes with zero budget-accounting leaks, every
/// non-failed job's join output verifies, and the service counters show
/// the injector fired and the retry layer healed.
#[test]
fn chaos_batch_heals_and_leaks_nothing() {
    let spec = mmjoin_env::FaultSpec::parse("seed=7;read:p=1:after=60:count=2").unwrap();
    assert!(!spec.is_empty());
    let svc = Service::start(
        ServeConfig::sim(64 * PAGE, 4)
            .with_faults(spec)
            .with_retries(4),
    )
    .unwrap();
    for req in batch() {
        svc.submit(req).unwrap();
    }
    let (results, stats) = svc.finish();

    assert_eq!(results.len(), 10);
    for r in &results {
        if r.error.is_none() {
            assert!(r.verified, "job {} completed but did not verify", r.id);
        }
        assert!(!r.panicked, "job {} panicked", r.id);
    }
    assert_eq!(stats.in_flight(), 0);
    assert_eq!(stats.budget_leak_bytes, 0, "budget accounting leaked");
    assert!(
        stats.faults_injected > 0,
        "fault spec never fired: {stats:?}"
    );
    assert!(stats.retries > 0, "retry layer never engaged: {stats:?}");
    // The default spec is fully healable: two transient read faults per
    // job, four attempts of budget — nothing should actually fail.
    let errors: Vec<_> = results.iter().filter_map(|r| r.error.as_deref()).collect();
    assert_eq!(stats.failed, 0, "{errors:?}");
    assert_eq!(stats.completed, 10);
}

#[test]
fn service_stats_snapshot_reflects_the_run() {
    let svc = Service::start(ServeConfig::sim(64 * PAGE, 2)).unwrap();
    for req in batch().into_iter().take(4) {
        svc.submit(req).unwrap();
    }
    svc.drain();
    let stats = svc.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    let json = stats.to_json();
    assert!(json.contains("\"submitted\":4"));
    assert!(json.contains("\"completed\":4"));
    // The simulator observed real paging work.
    assert!(stats.agg.fault_read_blocks > 0);
    assert!(stats.env_elapsed_seconds > 0.0);
}
