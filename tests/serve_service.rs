//! End-to-end test of the join service on the simulator: many
//! concurrent jobs over a global budget smaller than their combined
//! footprint, under both admission policies.

use std::collections::BTreeMap;
use std::sync::Arc;

use mmjoin_env::{CollectingSink, TraceEvent, TraceSink};
use mmjoin_serve::{AdmissionPolicy, JobRequest, ServeConfig, Service, PAGE};

/// A mixed batch of 10 jobs: different sizes, memories, distributions.
/// Each job's footprint fits the budget alone; together they exceed it
/// several times over, so the queue and the budget gate are exercised.
fn batch() -> Vec<JobRequest> {
    (0u64..10)
        .map(|i| {
            let d = if i % 2 == 0 { 2 } else { 4 };
            let mut req = JobRequest::new(
                400 * d as u64 + 200 * i * d as u64,
                if i % 3 == 0 { 32 } else { 64 },
                d,
                4 + 2 * (i % 4),
                100 + i,
            );
            req.name = format!("job{i}");
            if i % 3 == 1 {
                req.workload.dist = mmjoin_relstore::PointerDist::Zipf { theta: 0.6 };
            }
            req
        })
        .collect()
}

/// Run the whole batch under one policy; return id → (pairs, checksum).
fn run_batch(policy: AdmissionPolicy, budget_pages: u64) -> BTreeMap<u64, (u64, u64)> {
    let svc = Service::start(ServeConfig::sim(budget_pages * PAGE, 4).with_policy(policy)).unwrap();
    let batch = batch();
    let combined: u64 = batch.iter().map(JobRequest::footprint).sum();
    assert!(
        combined > budget_pages * PAGE,
        "test must oversubscribe the budget (combined {combined} B)"
    );
    let mut ids = Vec::new();
    for req in batch {
        ids.push(svc.submit(req).expect("every job fits the budget alone"));
    }
    let (results, stats) = svc.finish();

    // Every job completed with a verified result — no starvation, no
    // failures — and the reservation high-water mark respected the
    // budget throughout.
    assert_eq!(results.len(), ids.len());
    for r in &results {
        assert!(r.error.is_none(), "job {}: {:?}", r.id, r.error);
        assert!(r.verified, "job {} failed verification", r.id);
        assert!(r.pairs > 0);
        assert!(r.predicted_seconds > 0.0);
    }
    assert_eq!(stats.completed, ids.len() as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.in_flight(), 0);
    assert!(
        stats.peak_budget_bytes <= budget_pages * PAGE,
        "peak {} exceeds budget {}",
        stats.peak_budget_bytes,
        budget_pages * PAGE
    );
    assert!(stats.peak_budget_bytes > 0);

    results
        .into_iter()
        .map(|r| (r.id, (r.pairs, r.checksum)))
        .collect()
}

#[test]
fn oversubscribed_batch_completes_under_both_policies() {
    // Largest single footprint: 10 pages × 4 disks = 40 pages; combined
    // footprints are several hundred pages. 48 pages admits at most a
    // few jobs at a time.
    let fifo = run_batch(AdmissionPolicy::Fifo, 48);
    let spf = run_batch(AdmissionPolicy::ShortestPredicted, 48);

    // Admission order must not change what any join computes: same ids,
    // same pairs, same checksums.
    assert_eq!(fifo, spf);
}

/// ISSUE acceptance: the serve batch under a nonzero fault spec with a
/// fixed seed completes with zero budget-accounting leaks, every
/// non-failed job's join output verifies, and the service counters show
/// the injector fired and the retry layer healed.
#[test]
fn chaos_batch_heals_and_leaks_nothing() {
    let spec = mmjoin_env::FaultSpec::parse("seed=7;read:p=1:after=60:count=2").unwrap();
    assert!(!spec.is_empty());
    let svc = Service::start(
        ServeConfig::sim(64 * PAGE, 4)
            .with_faults(spec)
            .with_retries(4),
    )
    .unwrap();
    for req in batch() {
        svc.submit(req).unwrap();
    }
    let (results, stats) = svc.finish();

    assert_eq!(results.len(), 10);
    for r in &results {
        if r.error.is_none() {
            assert!(r.verified, "job {} completed but did not verify", r.id);
        }
        assert!(!r.panicked, "job {} panicked", r.id);
    }
    assert_eq!(stats.in_flight(), 0);
    assert_eq!(stats.budget_leak_bytes, 0, "budget accounting leaked");
    assert!(
        stats.faults_injected > 0,
        "fault spec never fired: {stats:?}"
    );
    assert!(stats.retries > 0, "retry layer never engaged: {stats:?}");
    // The default spec is fully healable: two transient read faults per
    // job, four attempts of budget — nothing should actually fail.
    let errors: Vec<_> = results.iter().filter_map(|r| r.error.as_deref()).collect();
    assert_eq!(stats.failed, 0, "{errors:?}");
    assert_eq!(stats.completed, 10);
}

/// Degradation must *release* budget, not just shrink the job: a queued
/// job that cannot fit next to the victim's original reservation must
/// be admitted as soon as the first degradation returns bytes to the
/// global pool — provably before the victim leaves the service.
#[test]
fn degradation_releases_budget_and_admits_queued_job() {
    // Job A ("victim"): 8 pages × 4 disks = 32 pages reserved. A
    // diskfull rule scoped to its file prefix fires on every attempt,
    // so A degrades MAX_DEGRADE times and ultimately fails.
    let mut a = JobRequest::new(8_000, 64, 4, 8, 41);
    a.name = "victim".into();
    a.workload.prefix = "victim".into();
    // Job B: 4 pages × 4 disks = 16 pages. Budget is 36 pages, so B
    // cannot be admitted (36 − 32 = 4 free) until A's first degradation
    // frees (8 − 4) × 4 = 16 pages.
    let b = JobRequest::new(800, 64, 4, 4, 42);
    let budget = 36 * PAGE;
    assert!(budget - a.footprint() < b.footprint());

    let spec = mmjoin_env::FaultSpec::parse("seed=3;diskfull:file=victim").unwrap();
    let sink = CollectingSink::new();
    let svc = Service::start(
        ServeConfig::sim(budget, 2)
            .with_faults(spec)
            .with_trace(sink.clone() as Arc<dyn TraceSink>),
    )
    .unwrap();
    let a_id = svc.submit(a).unwrap();
    let b_id = svc.submit(b).unwrap();
    let (results, stats) = svc.finish();

    let ra = results.iter().find(|r| r.id == a_id).unwrap();
    let rb = results.iter().find(|r| r.id == b_id).unwrap();
    assert!(ra.degraded >= 1, "victim never degraded: {ra:?}");
    assert!(ra.released_bytes > 0);
    assert!(
        ra.released_bytes < 32 * PAGE,
        "cannot release more than reserved"
    );
    assert!(ra.error.is_some(), "diskfull on every attempt must fail A");
    assert!(rb.error.is_none(), "B must complete: {:?}", rb.error);
    assert!(rb.verified);

    // Accounting stays exact across mid-run releases: no leak, and the
    // high-water mark never exceeded the budget.
    assert_eq!(stats.budget_leak_bytes, 0);
    assert!(stats.peak_budget_bytes <= budget);
    assert_eq!(stats.degraded, ra.degraded as u64);

    // The trace proves the causality: B's admission comes after A's
    // first degradation — the release made room; B's footprint did not
    // fit before it. (Whether B is admitted before or after A *leaves*
    // is a worker-scheduling race — A's remaining fast-failing attempts
    // can beat B's worker waking up — so the test does not order those.)
    let events = sink.events();
    let pos = |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().position(pred);
    let a_degraded = pos(&|e| matches!(e, TraceEvent::JobDegraded { job, .. } if *job == a_id))
        .expect("no JobDegraded event for A");
    let b_admitted = pos(&|e| matches!(e, TraceEvent::JobAdmitted { job, .. } if *job == b_id))
        .expect("no JobAdmitted event for B");
    assert!(
        a_degraded < b_admitted,
        "B admitted at {b_admitted} before A degraded at {a_degraded}"
    );
}

/// Regression: a job that degrades and *then fails terminally* must
/// release its entire remaining reservation — not just the
/// already-released degradation bytes, and not the original footprint
/// twice. The proof is behavioral: after the victim dies, a follow-up
/// job whose footprint equals the **whole** budget must still be
/// admitted (any residual reservation would starve it forever), and the
/// drained service must report zero leaked bytes.
#[test]
fn degraded_then_failed_job_releases_entire_reservation() {
    // Victim: 8 pages × 4 disks = 32 pages — the whole budget. A
    // diskfull rule scoped to its files fires on every attempt, so it
    // degrades MAX_DEGRADE times (releasing bytes mid-run each time)
    // and then fails terminally with only part of its original
    // reservation still held.
    let mut victim = JobRequest::new(8_000, 64, 4, 8, 51);
    victim.name = "victim".into();
    victim.workload.prefix = "victim".into();
    let budget = 32 * PAGE;
    assert_eq!(victim.footprint(), budget);

    // Follower: also exactly the whole budget, unaffected by the fault
    // rule. It can only ever be admitted if the victim's terminal
    // release returned every byte the degradations had not already.
    let follower = JobRequest::new(800, 64, 4, 8, 52);
    assert_eq!(follower.footprint(), budget);

    let spec = mmjoin_env::FaultSpec::parse("seed=3;diskfull:file=victim").unwrap();
    let svc = Service::start(ServeConfig::sim(budget, 2).with_faults(spec)).unwrap();
    let victim_id = svc.submit(victim).unwrap();
    let follower_id = svc.submit(follower).unwrap();
    let (results, stats) = svc.finish();

    let rv = results.iter().find(|r| r.id == victim_id).unwrap();
    let rf = results.iter().find(|r| r.id == follower_id).unwrap();
    assert!(rv.degraded >= 1, "victim never degraded: {rv:?}");
    assert!(
        rv.error.is_some(),
        "persistent diskfull must fail the victim"
    );
    assert!(rv.released_bytes > 0);
    assert!(rv.released_bytes < budget, "cannot release more than held");
    assert!(rf.error.is_none(), "follower must complete: {:?}", rf.error);
    assert!(rf.verified);

    assert_eq!(stats.budget_leak_bytes, 0, "terminal release leaked bytes");
    assert_eq!(stats.in_flight(), 0);
    assert!(stats.peak_budget_bytes <= budget);
}

#[test]
fn service_stats_snapshot_reflects_the_run() {
    let svc = Service::start(ServeConfig::sim(64 * PAGE, 2)).unwrap();
    for req in batch().into_iter().take(4) {
        svc.submit(req).unwrap();
    }
    svc.drain();
    let stats = svc.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    let json = stats.to_json();
    assert!(json.contains("\"submitted\":4"));
    assert!(json.contains("\"completed\":4"));
    // The simulator observed real paging work.
    assert!(stats.agg.fault_read_blocks > 0);
    assert!(stats.env_elapsed_seconds > 0.0);
}
