//! Sharded-service invariants, from two angles:
//!
//! * **model properties** over the budget partition and the placement
//!   policies — for any budget, shard count, placement, and job mix,
//!   per-shard admission against the shard slices can never commit more
//!   than the global budget, and merging per-shard stats snapshots is
//!   indistinguishable from folding every job into one snapshot
//!   (bucket-exact on all four histograms);
//! * **end-to-end runs** of [`ShardedService`] under every stock
//!   placement, checking the same invariants against the real
//!   bookkeeping (per-shard peaks within per-shard slices, slices
//!   summing to the global budget, merged counters consistent).

use mmjoin::Algo;
use mmjoin_serve::{
    Candidate, JobRequest, JobResult, JoinService, PlacementKind, ServeConfig, ServiceStats,
    ShardLoad, ShardedService, PAGE,
};
use proptest::prelude::*;

/// The sharded service's budget partition: quotient split, remainder
/// bytes spread over the first shards (mirrors `ShardedService::start`).
fn slices(budget: u64, shards: u32) -> Vec<u64> {
    let n = shards.max(1) as u64;
    (0..n)
        .map(|i| budget / n + u64::from(i < budget % n))
        .collect()
}

const KINDS: [PlacementKind; 3] = [
    PlacementKind::RoundRobin,
    PlacementKind::LeastLoaded,
    PlacementKind::PredictedBalanced,
];

/// A synthetic finished job for stats-merge properties.
fn synth_result(id: u64, queue_wait: f64, exec_wall: f64, ok: bool, degraded: u32) -> JobResult {
    JobResult {
        id,
        shard: 0,
        name: String::new(),
        alg: Algo::Grace,
        predicted_seconds: 1.0,
        pairs: if ok { 10 } else { 0 },
        checksum: 0xfeed,
        verified: ok,
        env_elapsed: queue_wait + exec_wall,
        queue_wait,
        exec_wall,
        read_faults: 5,
        write_backs: 2,
        attempts: 1 + degraded,
        retries: u64::from(!ok),
        faults_injected: u64::from(degraded > 0),
        degraded,
        released_bytes: 0,
        cleaned_files: 0,
        deadline_hit: false,
        panicked: false,
        resumed: false,
        error: if ok { None } else { Some("synthetic".into()) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The slices are an exact, near-even partition: they sum to the
    /// global budget and differ by at most one byte.
    #[test]
    fn shard_slices_partition_the_global_budget(
        budget in 0u64..(1 << 40),
        shards in 1u32..16,
    ) {
        let s = slices(budget, shards);
        prop_assert_eq!(s.len(), shards as usize);
        prop_assert_eq!(s.iter().sum::<u64>(), budget);
        prop_assert!(s.iter().max().unwrap() - s.iter().min().unwrap() <= 1);
    }

    /// For any placement policy and job mix, driving the stock
    /// placements over live load snapshots and admitting each shard's
    /// queue against its own slice never commits more than the global
    /// budget in total — and a placed job always fits its shard's
    /// slice, while a rejected job fits no slice.
    #[test]
    fn reserved_bytes_never_exceed_the_global_budget(
        budget in 1u64..100_000,
        shards in 1u32..8,
        kind_sel in 0usize..3,
        jobs in proptest::collection::vec((1u64..50_000, 0.0f64..100.0), 1..64),
    ) {
        let placement = KINDS[kind_sel].build();
        let slices = slices(budget, shards);
        let max_slice = *slices.iter().max().unwrap();
        let mut used = vec![0u64; slices.len()];
        let mut queued: Vec<Vec<(u64, f64)>> = vec![Vec::new(); slices.len()];
        for (footprint, predicted_seconds) in jobs {
            let cand = Candidate { footprint, predicted_seconds };
            let loads: Vec<ShardLoad> = slices
                .iter()
                .enumerate()
                .map(|(i, &b)| ShardLoad {
                    shard: i as u32,
                    budget_bytes: b,
                    reserved_bytes: used[i] + queued[i].iter().map(|q| q.0).sum::<u64>(),
                    queued: queued[i].len(),
                    backlog_seconds: queued[i].iter().map(|q| q.1).sum(),
                })
                .collect();
            match placement.place(&cand, &loads) {
                None => prop_assert!(
                    footprint > max_slice,
                    "rejected a job ({footprint} B) that fits a slice ({max_slice} B)"
                ),
                Some(k) => {
                    prop_assert!(k < slices.len());
                    prop_assert!(
                        footprint <= slices[k],
                        "placed a {footprint} B job on a {} B slice",
                        slices[k]
                    );
                    queued[k].push((footprint, predicted_seconds));
                }
            }
            // Each shard admits FIFO against its own slice — the only
            // admission rule the sharded service has.
            for k in 0..slices.len() {
                while let Some(&(fp, _)) = queued[k].first() {
                    if used[k] + fp > slices[k] {
                        break;
                    }
                    queued[k].remove(0);
                    used[k] += fp;
                }
                prop_assert!(used[k] <= slices[k]);
            }
            prop_assert!(
                used.iter().sum::<u64>() <= budget,
                "committed {} B of a {budget} B global budget",
                used.iter().sum::<u64>()
            );
        }
    }

    /// Scattering jobs across per-shard stats snapshots and merging
    /// them equals folding every job into one single-queue snapshot:
    /// identical counters and bucket-exact histograms, regardless of
    /// how jobs land on shards.
    #[test]
    fn merged_shard_stats_match_a_single_queue_fold(
        shards in 1usize..6,
        jobs in proptest::collection::vec(
            (0.0f64..5.0, 0.0f64..5.0, proptest::bool::ANY, 0u32..3, 0usize..8),
            1..80,
        ),
    ) {
        let mut per: Vec<ServiceStats> = vec![ServiceStats::default(); shards];
        let mut single = ServiceStats::default();
        for (i, &(queue_wait, exec_wall, ok, degraded, shard_sel)) in jobs.iter().enumerate() {
            let r = synth_result(i as u64 + 1, queue_wait, exec_wall, ok, degraded);
            let shard = &mut per[shard_sel % shards];
            shard.submitted += 1;
            shard.record(&r, None, None);
            single.submitted += 1;
            single.record(&r, None, None);
        }
        let mut merged = ServiceStats::default();
        for s in &per {
            merged.merge(s);
        }
        prop_assert_eq!(merged.submitted, single.submitted);
        prop_assert_eq!(merged.completed, single.completed);
        prop_assert_eq!(merged.failed, single.failed);
        prop_assert_eq!(merged.degraded, single.degraded);
        prop_assert_eq!(merged.retries, single.retries);
        prop_assert_eq!(merged.in_flight(), single.in_flight());
        for (m, s, name) in [
            (&merged.latency_hist, &single.latency_hist, "latency"),
            (&merged.queue_hist, &single.queue_hist, "queue"),
            (&merged.exec_hist, &single.exec_hist, "exec"),
            (&merged.pass_hist, &single.pass_hist, "pass"),
        ] {
            prop_assert_eq!(m.buckets(), s.buckets(), "{} buckets diverge", name);
            prop_assert_eq!(m.count(), s.count(), "{} count diverges", name);
            prop_assert_eq!(m.min(), s.min(), "{} min diverges", name);
            prop_assert_eq!(m.max(), s.max(), "{} max diverges", name);
        }
    }
}

/// End-to-end: a real sharded run under every stock placement keeps
/// every shard's peak within its own slice, the slices sum to the
/// global budget, and the merged stats agree with the per-shard ones.
#[test]
fn sharded_runs_respect_per_shard_budgets() {
    for kind in KINDS {
        let global = 64 * PAGE;
        let svc = ShardedService::start(ServeConfig::sim(global, 1), 4, kind.build()).unwrap();
        let budgets = svc.shard_budgets();
        assert_eq!(budgets.iter().sum::<u64>(), global, "{}", kind.name());
        // 8 jobs of 8 pages each against 16-page slices: oversubscribed
        // globally, so queues (and possibly steals) engage.
        for seed in 0..8 {
            svc.submit(JobRequest::new(1_000, 32, 2, 4, 200 + seed))
                .unwrap();
        }
        svc.drain();
        let per = svc.shard_stats();
        assert_eq!(per.len(), 4);
        for (i, s) in per.iter().enumerate() {
            assert_eq!(s.budget_bytes, budgets[i], "{} shard {i}", kind.name());
            assert!(
                s.peak_budget_bytes <= s.budget_bytes,
                "{} shard {i}: peak {} exceeds slice {}",
                kind.name(),
                s.peak_budget_bytes,
                s.budget_bytes
            );
            assert_eq!(s.budget_leak_bytes, 0, "{} shard {i}", kind.name());
        }
        let merged = svc.stats();
        assert_eq!(merged.completed, 8, "{}", kind.name());
        assert_eq!(merged.failed, 0);
        assert_eq!(merged.in_flight(), 0);
        assert_eq!(
            merged.completed,
            per.iter().map(|s| s.completed).sum::<u64>()
        );
        assert!(merged.peak_budget_bytes <= merged.budget_bytes);
        let results = svc.results();
        assert_eq!(results.len(), 8);
        assert!(results.iter().all(|r| r.verified && r.error.is_none()));
        // Every result names a real shard.
        assert!(results.iter().all(|r| (r.shard as usize) < per.len()));
    }
}
