//! Model validation against the execution-driven simulator — the
//! paper's §8 methodology as an automated test suite.
//!
//! These tests pin the *relationships* Fig. 5 demonstrates: the model
//! tracks the experiment within a stated tolerance at every operating
//! point, predicts the same memory-sensitivity shapes (nested loops'
//! decline, sort-merge's staircase, Grace's thrashing knee), and ranks
//! the algorithms the same way the measured runs do.

use mmjoin::{inputs_for, join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_env::machine::MachineParams;
use mmjoin_model::predict;
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{calibrate_curves, CalibrationSpec, DiskParams, SimConfig, SimEnv};

/// Machine whose dtt curves were measured from the simulated disk (the
/// coupling the experiments use).
fn machine() -> MachineParams {
    let disk = DiskParams::waterloo96();
    let (dttr, dttw) =
        calibrate_curves(&disk, &CalibrationSpec::default()).expect("calibration succeeds");
    MachineParams {
        dttr,
        dttw,
        ..MachineParams::waterloo96()
    }
}

/// A quarter-scale §8 workload (25 600 objects) so the whole sweep runs
/// in test time.
fn workload(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        rel: RelConfig {
            r_size: 128,
            s_size: 128,
            d: 4,
            r_objects: 25_600,
            s_objects: 25_600,
        },
        dist: PointerDist::Uniform,
        seed,
        prefix: String::new(),
    }
}

/// Run (model, experiment) at a memory budget given as a fraction of
/// |R| bytes.
fn point(alg: Algo, w: &WorkloadSpec, frac: f64) -> (f64, f64) {
    let m = machine();
    let r_bytes = w.rel.r_objects * w.rel.r_size as u64;
    let pages = (((frac * r_bytes as f64) as u64) / 4096).max(4);
    let mut cfg = SimConfig::waterloo96(4);
    cfg.machine = m.clone();
    cfg.rproc_pages = pages as usize;
    cfg.sproc_pages = pages as usize;
    let env = SimEnv::new(cfg).unwrap();
    let rels = build(&env, w).unwrap();
    let spec = JoinSpec::new(pages * 4096, pages * 4096).with_mode(ExecMode::Sequential);
    let out = join(&env, &rels, alg, &spec).unwrap();
    verify(&out, &rels).unwrap();
    let model = predict(
        alg.modelled().expect("modelled algorithm"),
        &m,
        &inputs_for(&rels, &spec),
    )
    .total();
    (model, out.elapsed)
}

#[test]
fn model_tracks_experiment_within_tolerance() {
    // The paper's Fig. 5 shows close agreement for nested loops and
    // sort-merge and looser agreement for Grace. We pin: nested loops
    // within 25%, sort-merge and Grace within a factor of 1.8 (the §3.1
    // "everything random in band" simplification overprices structured
    // access on the mechanistic disk; see EXPERIMENTS.md).
    let w = workload(101);
    for frac in [0.1, 0.3, 0.6] {
        let (model, sim) = point(Algo::NestedLoops, &w, frac);
        let ratio = model / sim;
        assert!(
            (0.75..1.25).contains(&ratio),
            "nested loops frac={frac}: model {model:.1} vs sim {sim:.1}"
        );
    }
    for alg in [Algo::SortMerge, Algo::Grace] {
        for frac in [0.03, 0.06] {
            let (model, sim) = point(alg, &w, frac);
            let ratio = model / sim;
            assert!(
                (0.55..1.8).contains(&ratio),
                "{} frac={frac}: model {model:.1} vs sim {sim:.1}",
                alg.name()
            );
        }
    }
}

#[test]
fn nested_loops_memory_sensitivity_shape() {
    // Fig. 5a: time falls steeply with memory then flattens — in both
    // series.
    let w = workload(102);
    let (m_low, s_low) = point(Algo::NestedLoops, &w, 0.1);
    let (m_mid, s_mid) = point(Algo::NestedLoops, &w, 0.35);
    let (m_hi, s_hi) = point(Algo::NestedLoops, &w, 0.7);
    for (low, mid, hi, series) in [(m_low, m_mid, m_hi, "model"), (s_low, s_mid, s_hi, "sim")] {
        assert!(
            low > 1.5 * mid,
            "{series}: steep decline expected ({low:.1} -> {mid:.1})"
        );
        assert!(
            (hi - mid).abs() / mid < 0.25,
            "{series}: plateau expected ({mid:.1} -> {hi:.1})"
        );
    }
}

#[test]
fn sort_merge_staircase_appears_in_both_series() {
    // Find a memory fraction range where the merge plan changes and
    // check both series jump together.
    let w = workload(103);
    let (m_small, s_small) = point(Algo::SortMerge, &w, 0.008);
    let (m_big, s_big) = point(Algo::SortMerge, &w, 0.05);
    // Fewer passes at the larger memory ⇒ both series drop markedly.
    assert!(
        m_small > 1.1 * m_big,
        "model staircase: {m_small:.1} vs {m_big:.1}"
    );
    assert!(
        s_small > 1.1 * s_big,
        "sim staircase: {s_small:.1} vs {s_big:.1}"
    );
}

#[test]
fn grace_thrashing_knee_appears_in_both_series() {
    let w = workload(104);
    let (m_thrash, s_thrash) = point(Algo::Grace, &w, 0.012);
    let (m_ok, s_ok) = point(Algo::Grace, &w, 0.06);
    assert!(
        m_thrash > 1.3 * m_ok,
        "model knee: {m_thrash:.1} vs {m_ok:.1}"
    );
    assert!(
        s_thrash > 1.3 * s_ok,
        "sim knee: {s_thrash:.1} vs {s_ok:.1}"
    );
}

#[test]
fn hybrid_hash_dominates_grace_in_both_series() {
    // The extension algorithm's whole point: bucket 0 stays in memory,
    // so hybrid ≤ Grace wherever f0 > 0 — in the model *and* in the
    // executed runs.
    let w = workload(106);
    for frac in [0.03, 0.08] {
        let (m_g, s_g) = point(Algo::Grace, &w, frac);
        let (m_h, s_h) = point(Algo::HybridHash, &w, frac);
        assert!(
            m_h <= m_g * 1.001,
            "model frac={frac}: hybrid {m_h:.1} vs grace {m_g:.1}"
        );
        assert!(
            s_h <= s_g * 1.02,
            "sim frac={frac}: hybrid {s_h:.1} vs grace {s_g:.1}"
        );
    }
}

#[test]
fn model_and_sim_agree_on_algorithm_ranking() {
    // At Fig. 5's shared small-memory regime, both the model and the
    // measured runs must order the algorithms Grace < sort-merge <
    // nested loops.
    let w = workload(105);
    let frac = 0.05;
    let (m_nl, s_nl) = point(Algo::NestedLoops, &w, frac);
    let (m_sm, s_sm) = point(Algo::SortMerge, &w, frac);
    let (m_gr, s_gr) = point(Algo::Grace, &w, frac);
    assert!(
        m_gr < m_sm && m_sm < m_nl,
        "model: {m_gr:.1} {m_sm:.1} {m_nl:.1}"
    );
    assert!(
        s_gr < s_sm && s_sm < s_nl,
        "sim:   {s_gr:.1} {s_sm:.1} {s_nl:.1}"
    );
}

#[test]
fn full_paper_scale_validation() {
    // The actual §8 workload — |R| = |S| = 102 400 × 128 B, D = 4 — at
    // one Fig. 5 operating point per algorithm: exact verification plus
    // the figure-level regime ordering, at full scale.
    let w = WorkloadSpec {
        rel: RelConfig {
            r_size: 128,
            s_size: 128,
            d: 4,
            r_objects: 102_400,
            s_objects: 102_400,
        },
        dist: PointerDist::Uniform,
        seed: 1996,
        prefix: String::new(),
    };
    let frac = 0.05;
    let mut times = Vec::new();
    for alg in [
        Algo::Grace,
        Algo::HybridHash,
        Algo::SortMerge,
        Algo::NestedLoops,
    ] {
        let r_bytes = w.rel.r_objects * w.rel.r_size as u64;
        let pages = ((frac * r_bytes as f64) as u64) / 4096;
        let mut cfg = SimConfig::waterloo96(4);
        cfg.rproc_pages = pages as usize;
        cfg.sproc_pages = pages as usize;
        let env = SimEnv::new(cfg).unwrap();
        let rels = build(&env, &w).unwrap();
        let spec = JoinSpec::new(pages * 4096, pages * 4096).with_mode(ExecMode::Sequential);
        let out = join(&env, &rels, alg, &spec).unwrap();
        verify(&out, &rels).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_eq!(out.pairs, 102_400);
        times.push((alg, out.elapsed));
    }
    // Regime ordering at 5% memory: hash joins < sort-merge < nested loops.
    assert!(times[0].1 < times[2].1, "grace < sort-merge");
    assert!(times[1].1 <= times[0].1 * 1.02, "hybrid <= grace");
    assert!(times[2].1 < times[3].1, "sort-merge < nested loops");
}
