//! The paper's central structural claim (§4, §6.1, §7): because the
//! join attribute is a *virtual pointer*, sorting or range-hashing `R`
//! by it turns the inner relation's accesses **sequential** — no sort
//! or hash of `S` ever happens. This test observes the simulator's
//! actual disk reads of `S_0` and checks the claim directly:
//!
//! * sort-merge and Grace read `S_0`'s blocks in (near-)ascending
//!   order — few inversions;
//! * nested loops reads them in essentially random order — inversions
//!   near the 50% of a random permutation.

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{SimConfig, SimEnv, TraceKind};

/// Fraction of adjacent descending pairs among `S_0` block reads.
fn s_read_inversions(alg: Algo) -> (f64, usize) {
    let d = 2;
    let w = WorkloadSpec {
        rel: RelConfig {
            r_size: 64,
            s_size: 64,
            d,
            r_objects: 20_000,
            s_objects: 20_000,
        },
        dist: PointerDist::Uniform,
        seed: 17,
        prefix: String::new(),
    };
    let mut cfg = SimConfig::waterloo96(d);
    cfg.rproc_pages = 16;
    cfg.sproc_pages = 16; // small: S pages rarely stay cached
    cfg.trace = true;
    let env = SimEnv::new(cfg).unwrap();
    let rels = build(&env, &w).unwrap();
    let spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Sequential);
    let out = join(&env, &rels, alg, &spec).unwrap();
    verify(&out, &rels).unwrap();

    // S_0 is the second extent on disk 0: R_0 occupies the first
    // r_part_bytes.
    let s_start = rels.rel.r_part_bytes().div_ceil(4096);
    let s_end = s_start + rels.rel.s_part_bytes().div_ceil(4096);
    let s_reads: Vec<u64> = env
        .take_trace()
        .into_iter()
        .filter(|e| {
            e.disk == 0 && e.kind == TraceKind::Read && e.block >= s_start && e.block < s_end
        })
        .map(|e| e.block)
        .collect();
    assert!(
        s_reads.len() > 50,
        "{}: expected substantial S_0 traffic, saw {}",
        alg.name(),
        s_reads.len()
    );
    let inversions = s_reads.windows(2).filter(|w| w[1] < w[0]).count();
    (
        inversions as f64 / (s_reads.len() - 1) as f64,
        s_reads.len(),
    )
}

#[test]
fn sort_merge_reads_s_nearly_sequentially() {
    let (inv, n) = s_read_inversions(Algo::SortMerge);
    assert!(
        inv < 0.05,
        "sort-merge should scan S in order: {:.1}% inversions over {n} reads",
        inv * 100.0
    );
}

#[test]
fn grace_reads_s_nearly_sequentially() {
    // Grace's range hash keeps buckets (and chains within buckets)
    // monotone in S address; a small inversion rate comes from bucket
    // boundaries and Sproc cache evictions.
    let (inv, n) = s_read_inversions(Algo::Grace);
    assert!(
        inv < 0.10,
        "grace should scan S nearly in order: {:.1}% inversions over {n} reads",
        inv * 100.0
    );
}

#[test]
fn hybrid_hash_reads_s_nearly_sequentially() {
    let (inv, n) = s_read_inversions(Algo::HybridHash);
    assert!(
        inv < 0.12,
        "hybrid should scan S nearly in order: {:.1}% inversions over {n} reads",
        inv * 100.0
    );
}

#[test]
fn nested_loops_reads_s_randomly() {
    let (inv, n) = s_read_inversions(Algo::NestedLoops);
    assert!(
        inv > 0.30,
        "nested loops' S access should look random: {:.1}% inversions over {n} reads",
        inv * 100.0
    );
}
