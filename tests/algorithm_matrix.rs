//! The correctness matrix: every algorithm × partition count × memory
//! budget × pointer distribution must reproduce the workload oracle on
//! the simulator, plus a property-based sweep over randomized workload
//! shapes.

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{ContentionMode, Policy, SimConfig, SimEnv};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn run_one(
    alg: Algo,
    d: u32,
    objects: u64,
    obj_size: u32,
    pages: usize,
    dist: PointerDist,
    policy: Policy,
    seed: u64,
) -> Result<(), String> {
    let mut cfg = SimConfig::waterloo96(d);
    cfg.rproc_pages = pages;
    cfg.sproc_pages = pages;
    cfg.policy = policy;
    cfg.contention = ContentionMode::Independent;
    let env = SimEnv::new(cfg).map_err(|e| e.to_string())?;
    let w = WorkloadSpec {
        rel: RelConfig {
            r_size: obj_size,
            s_size: obj_size,
            d,
            r_objects: objects,
            s_objects: objects,
        },
        dist,
        seed,
        prefix: String::new(),
    };
    let rels = build(&env, &w).map_err(|e| e.to_string())?;
    let spec =
        JoinSpec::new(pages as u64 * 4096, pages as u64 * 4096).with_mode(ExecMode::Sequential);
    let out = join(&env, &rels, alg, &spec).map_err(|e| e.to_string())?;
    verify(&out, &rels).map_err(|e| e.to_string())
}

#[test]
fn matrix_partitions_and_memory() {
    for alg in Algo::ALL {
        for d in [1u32, 2, 3, 4, 6] {
            for pages in [5usize, 16, 64] {
                let objects = 600 * d as u64;
                run_one(
                    alg,
                    d,
                    objects,
                    32,
                    pages,
                    PointerDist::Uniform,
                    Policy::Lru,
                    1000 + d as u64,
                )
                .unwrap_or_else(|e| panic!("{} d={d} pages={pages}: {e}", alg.name()));
            }
        }
    }
}

#[test]
fn matrix_distributions() {
    for alg in Algo::ALL {
        for dist in [
            PointerDist::Uniform,
            PointerDist::Zipf { theta: 0.5 },
            PointerDist::Zipf { theta: 0.99 },
            PointerDist::CrossPartition,
        ] {
            run_one(alg, 4, 2_000, 48, 20, dist.clone(), Policy::Lru, 2000)
                .unwrap_or_else(|e| panic!("{} {dist:?}: {e}", alg.name()));
        }
    }
}

#[test]
fn matrix_replacement_policies() {
    for alg in [Algo::SortMerge, Algo::Grace] {
        for policy in [Policy::Lru, Policy::Fifo, Policy::SecondChance] {
            run_one(alg, 2, 2_000, 64, 10, PointerDist::Uniform, policy, 3000)
                .unwrap_or_else(|e| panic!("{} {policy:?}: {e}", alg.name()));
        }
    }
}

#[test]
fn matrix_object_sizes_including_non_power_of_two() {
    // Objects that do not divide the page evenly straddle page
    // boundaries — the paging layer must handle split accesses.
    for alg in Algo::ALL {
        for obj_size in [24u32, 48, 100, 128, 300] {
            run_one(
                alg,
                2,
                1_000,
                obj_size,
                12,
                PointerDist::Uniform,
                Policy::Lru,
                4000 + obj_size as u64,
            )
            .unwrap_or_else(|e| panic!("{} size={obj_size}: {e}", alg.name()));
        }
    }
}

#[test]
fn matrix_asymmetric_relation_sizes() {
    // |R| != |S|: many R-objects per S-object and vice versa.
    for (r_objects, s_objects) in [(4_000u64, 500u64), (500, 4_000)] {
        for alg in Algo::ALL {
            let mut cfg = SimConfig::waterloo96(2);
            cfg.rproc_pages = 24;
            cfg.sproc_pages = 24;
            let env = SimEnv::new(cfg).unwrap();
            let w = WorkloadSpec {
                rel: RelConfig {
                    r_size: 32,
                    s_size: 64,
                    d: 2,
                    r_objects,
                    s_objects,
                },
                dist: PointerDist::Uniform,
                seed: 5000,
                prefix: String::new(),
            };
            let rels = build(&env, &w).unwrap();
            let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).unwrap();
            verify(&out, &rels)
                .unwrap_or_else(|e| panic!("{} {r_objects}x{s_objects}: {e}", alg.name()));
        }
    }
}

#[test]
fn sort_merge_exercises_deep_merge_plans() {
    // Force several ABL merge passes (the Fig. 5b staircase territory)
    // and check correctness still holds exactly.
    let mut cfg = SimConfig::waterloo96(2);
    cfg.rproc_pages = 4;
    cfg.sproc_pages = 4;
    let env = SimEnv::new(cfg).unwrap();
    let w = WorkloadSpec {
        rel: RelConfig {
            r_size: 32,
            s_size: 32,
            d: 2,
            r_objects: 8_000,
            s_objects: 8_000,
        },
        dist: PointerDist::Uniform,
        seed: 99,
        prefix: String::new(),
    };
    let rels = build(&env, &w).unwrap();
    let spec = JoinSpec::new(4 * 4096, 4 * 4096).with_mode(ExecMode::Sequential);
    let plan = mmjoin::sort_merge::plan_for(4096, &rels, &spec, 0).unwrap();
    assert!(
        plan.npass >= 3,
        "test intends a deep merge; got NPASS = {}",
        plan.npass
    );
    let out = join(&env, &rels, Algo::SortMerge, &spec).unwrap();
    verify(&out, &rels).unwrap();
}

#[test]
fn grace_exercises_many_buckets() {
    // Tiny memory drives K into the hundreds; every bucket boundary
    // must still join exactly.
    let mut cfg = SimConfig::waterloo96(2);
    cfg.rproc_pages = 4;
    cfg.sproc_pages = 4;
    let env = SimEnv::new(cfg).unwrap();
    let w = WorkloadSpec {
        rel: RelConfig {
            r_size: 128,
            s_size: 128,
            d: 2,
            r_objects: 10_000,
            s_objects: 10_000,
        },
        dist: PointerDist::Uniform,
        seed: 98,
        prefix: String::new(),
    };
    let rels = build(&env, &w).unwrap();
    let spec = JoinSpec::new(4 * 4096, 4 * 4096).with_mode(ExecMode::Sequential);
    let k = mmjoin::grace::k_for(&rels, &spec);
    assert!(k > 100, "test intends many buckets; got K = {k}");
    let out = join(&env, &rels, Algo::Grace, &spec).unwrap();
    verify(&out, &rels).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized workload shapes: any (d, counts, sizes, memory, seed)
    /// combination must verify for every algorithm.
    #[test]
    fn random_workloads_always_verify(
        d in 1u32..5,
        per_part in 50u64..400,
        obj_exp in 0u32..3,
        pages in 4usize..40,
        theta in 0.0f64..1.2,
        seed in 0u64..u64::MAX,
    ) {
        let objects = per_part * d as u64;
        let obj_size = 32u32 << obj_exp;
        let dist = if theta < 0.1 {
            PointerDist::Uniform
        } else {
            PointerDist::Zipf { theta }
        };
        for alg in Algo::ALL {
            let r = run_one(alg, d, objects, obj_size, pages, dist.clone(), Policy::Lru, seed);
            prop_assert!(r.is_ok(), "{} failed: {:?}", alg.name(), r.err());
        }
    }
}
