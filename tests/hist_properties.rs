//! Property tests for the fixed-bucket log-scale [`Histogram`]: merge
//! is commutative and associative on the bucket counts and preserves
//! the total count exactly; the quantile ladder is monotone; and every
//! quantile estimate brackets the true nearest-rank sample value to
//! within the width of the bucket holding it.

use mmjoin_env::Histogram;
use proptest::prelude::*;

fn hist(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Exact nearest-rank quantile over the raw samples — the value the
/// histogram estimate must bracket.
fn nearest_rank(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sample durations spanning the histogram's interesting range
/// (microseconds to minutes), with occasional excursions into the
/// sub-nanosecond underflow and >1000 s overflow buckets.
fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..8, 1e-6f64..100.0), 1..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(sel, v)| match sel {
                0 => v * 1e-12, // underflow bucket
                1 => v * 20.0,  // up to 2000 s: sometimes overflow
                _ => v,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (hist(&a), hist(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.buckets(), ba.buckets());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert!((ab.sum() - ba.sum()).abs() <= 1e-9 * ab.sum().abs().max(1.0));
    }

    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.buckets(), right.buckets());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-9 * left.sum().abs().max(1.0));
    }

    #[test]
    fn merge_preserves_count_exactly(a in samples(), b in samples()) {
        let mut m = hist(&a);
        m.merge(&hist(&b));
        prop_assert_eq!(m.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(
            m.buckets().iter().sum::<u64>(),
            (a.len() + b.len()) as u64,
            "every sample lands in exactly one bucket"
        );
        // Merging an empty histogram changes nothing.
        let before = m.clone();
        m.merge(&Histogram::new());
        prop_assert_eq!(m.buckets(), before.buckets());
        prop_assert_eq!(m.count(), before.count());
        prop_assert_eq!(m.min(), before.min());
        prop_assert_eq!(m.max(), before.max());
    }

    #[test]
    fn quantile_ladder_is_monotone(a in samples()) {
        let h = hist(&a);
        prop_assert!(h.min() <= h.p50());
        prop_assert!(h.p50() <= h.p90());
        prop_assert!(h.p90() <= h.p99());
        prop_assert!(h.p99() <= h.p999());
        prop_assert!(h.p999() <= h.max());
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width(
        a in samples(),
        q_millis in 1u32..1000,
    ) {
        let q = f64::from(q_millis) / 1000.0;
        let h = hist(&a);
        let est = h.quantile(q);
        let truth = nearest_rank(&a, q);
        // Never undershoots the true nearest-rank value...
        prop_assert!(
            est >= truth,
            "q={q}: estimate {est} undershoots true {truth}"
        );
        // ...and overshoots it by at most the width of its bucket
        // (tighter when clamped to the recorded max).
        let (_, upper) = Histogram::bucket_bounds(Histogram::bucket_index(truth));
        let bound = upper.min(h.max());
        prop_assert!(
            est <= bound,
            "q={q}: estimate {est} exceeds bucket bound {bound} for true {truth}"
        );
    }
}
