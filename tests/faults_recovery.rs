//! Fault-injection and recovery invariants, cross-crate:
//!
//! * `FaultyEnv` with an empty `FaultSpec` is byte-identical passthrough
//!   (property-tested over workload shapes, for all three paper joins);
//! * injection traces are seed-deterministic at the join level;
//! * the retry layer heals transient faults and never leaks temp files.

use mmjoin::{join, join_with_retry, verify, Algo, ExecMode, JoinSpec, RetryPolicy};
use mmjoin_env::{Env, EnvStats, FaultSpec, FaultyEnv};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{SimConfig, SimEnv};
use proptest::prelude::*;

const PAGE: u64 = 4096;

fn workload(objects_per_disk: u64, d: u32, seed: u64, dist: PointerDist) -> WorkloadSpec {
    WorkloadSpec {
        rel: RelConfig {
            r_size: 32,
            s_size: 32,
            d,
            r_objects: objects_per_disk * d as u64,
            s_objects: objects_per_disk * d as u64,
        },
        dist,
        seed,
        prefix: String::new(),
    }
}

fn sim(d: u32, pages: usize) -> SimEnv {
    let mut cfg = SimConfig::waterloo96(d);
    cfg.rproc_pages = pages;
    cfg.sproc_pages = pages;
    SimEnv::new(cfg).expect("valid test config")
}

/// Run one join on `env` in `mode`, returning everything observable:
/// the output and the full per-process counter set.
fn observe<E: Env>(
    env: &E,
    w: &WorkloadSpec,
    alg: Algo,
    pages: u64,
    mode: ExecMode,
) -> (u64, u64, f64, EnvStats) {
    let rels = build(env, w).expect("workload builds");
    let spec = JoinSpec::new(pages * PAGE, pages * PAGE).with_mode(mode);
    let out = join(env, &rels, alg, &spec).expect("join runs");
    verify(&out, &rels).expect("join result matches oracle");
    (out.pairs, out.checksum, out.elapsed, env.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole passthrough property: wrapping any environment in
    /// `FaultyEnv` with an *empty* spec changes nothing — same pairs,
    /// same checksum, same virtual elapsed time, and byte-identical
    /// `ProcStats` for every process — on all three paper joins.
    #[test]
    fn empty_spec_is_byte_identical_passthrough(
        seed in 0u64..5_000,
        d in 1u32..=4,
        pages in 4u64..=12,
        zipf in proptest::bool::ANY,
    ) {
        let dist = if zipf {
            PointerDist::Zipf { theta: 0.6 }
        } else {
            PointerDist::Uniform
        };
        let w = workload(200, d, seed, dist);
        for alg in [Algo::NestedLoops, Algo::SortMerge, Algo::Grace] {
            let bare = observe(&sim(d, pages as usize), &w, alg, pages, ExecMode::Sequential);
            let wrapped = observe(
                &FaultyEnv::new(sim(d, pages as usize), FaultSpec::none()),
                &w,
                alg,
                pages,
                ExecMode::Sequential,
            );
            prop_assert_eq!(bare.0, wrapped.0, "pairs ({})", alg.name());
            prop_assert_eq!(bare.1, wrapped.1, "checksum ({})", alg.name());
            prop_assert_eq!(bare.2, wrapped.2, "elapsed ({})", alg.name());
            // ProcStats derives PartialEq: every counter and every
            // clock must agree exactly.
            prop_assert_eq!(&bare.3, &wrapped.3, "ProcStats ({})", alg.name());

            // The modern kernels go through the same wrapped call
            // surface (bulk read_at + s_fetch_batch), so the
            // passthrough guarantee must hold for them too. Threaded
            // scheduling makes virtual clocks nondeterministic across
            // runs, so compare the join result, not EnvStats.
            let bare_m = observe(&sim(d, pages as usize), &w, alg, pages, ExecMode::Modern);
            let wrapped_m = observe(
                &FaultyEnv::new(sim(d, pages as usize), FaultSpec::none()),
                &w,
                alg,
                pages,
                ExecMode::Modern,
            );
            prop_assert_eq!(bare_m.0, wrapped_m.0, "modern pairs ({})", alg.name());
            prop_assert_eq!(bare_m.1, wrapped_m.1, "modern checksum ({})", alg.name());
        }
    }
}

/// A join under a seeded nonzero spec produces the same fault counters
/// on every run (sequential mode fixes the op order).
#[test]
fn injection_trace_is_seed_deterministic_at_join_level() {
    let run = |spec_seed: u64| {
        let spec = FaultSpec::parse(&format!("seed={spec_seed};read:p=0.01:count=1000")).unwrap();
        let env = FaultyEnv::new(sim(2, 8), spec);
        let w = workload(300, 2, 5, PointerDist::Uniform);
        let rels = build(env.inner(), &w).unwrap();
        let jspec = JoinSpec::new(8 * PAGE, 8 * PAGE).with_mode(ExecMode::Sequential);
        let _ = join_with_retry(&env, &rels, Algo::Grace, &jspec, &RetryPolicy::attempts(50));
        env.fault_stats()
    };
    let a = run(11);
    assert_eq!(a, run(11), "same seed, same trace");
    assert!(a.total() > 0, "p=0.01 over a whole join must fire");
}

/// End-to-end healing: a join that hits injected transient faults in
/// every pass still produces the oracle answer, and the environment's
/// file table ends exactly as a fault-free run leaves it.
#[test]
fn retry_heals_transient_faults_without_leaking_files() {
    let w = workload(300, 2, 23, PointerDist::Uniform);
    let jspec = JoinSpec::new(8 * PAGE, 8 * PAGE).with_mode(ExecMode::Sequential);

    // Reference: the file table after a clean run.
    let clean_env = sim(2, 8);
    let clean_rels = build(&clean_env, &w).unwrap();
    let clean_out = join(&clean_env, &clean_rels, Algo::Grace, &jspec).unwrap();
    let reference_files = clean_env.list_files();

    // One write fault in re-partitioning pass 0 (RP temporaries) and one
    // read fault in the join pass (RS temporaries): two distinct passes
    // must each restart and heal.
    let spec =
        FaultSpec::parse("seed=9;write:file=RP:count=1:after=3;read:file=RS:count=1").unwrap();
    let env = FaultyEnv::new(sim(2, 8), spec);
    let rels = build(env.inner(), &w).unwrap();
    let (out, report) =
        join_with_retry(&env, &rels, Algo::Grace, &jspec, &RetryPolicy::attempts(8))
            .expect("retry heals all transient faults");
    verify(&out, &rels).unwrap();
    assert_eq!(out.pairs, clean_out.pairs);
    assert_eq!(out.checksum, clean_out.checksum);
    assert!(report.retried(), "{report:?}");
    assert!(env.fault_stats().total() >= 2, "{:?}", env.fault_stats());
    assert_eq!(env.list_files(), reference_files, "leaked or lost files");
}

/// Modern-mode healing: inject a transient fault into the bulk scan
/// (`read_at`) *and* two into the probe exchange (`s_fetch_batch`), and
/// require the retried join to match a fault-free modern run exactly.
/// This is the regression net for scratch-arena state leaking across
/// attempts — arenas, runs, and shared slots are rebuilt per attempt,
/// so a half-filled partition buffer or stale published run from a
/// failed attempt would change the pair count or checksum here.
#[test]
fn modern_retry_heals_transient_faults_with_fresh_scratch() {
    let w = workload(300, 2, 29, PointerDist::Zipf { theta: 0.8 });
    let jspec = JoinSpec::new(8 * PAGE, 8 * PAGE).with_mode(ExecMode::Modern);
    for alg in [Algo::SortMerge, Algo::Grace, Algo::HybridHash] {
        let clean_env = sim(2, 8);
        let clean_rels = build(&clean_env, &w).unwrap();
        let clean_out = join(&clean_env, &clean_rels, alg, &jspec).unwrap();
        verify(&clean_out, &clean_rels).unwrap();
        let reference_files = clean_env.list_files();

        let spec = FaultSpec::parse("seed=9;read:count=1:after=1;sfetch:count=2:after=3").unwrap();
        let env = FaultyEnv::new(sim(2, 8), spec);
        let rels = build(env.inner(), &w).unwrap();
        let (out, report) = join_with_retry(&env, &rels, alg, &jspec, &RetryPolicy::attempts(8))
            .unwrap_or_else(|e| panic!("{}: retry heals modern joins: {e}", alg.name()));
        verify(&out, &rels).unwrap();
        assert_eq!(out.pairs, clean_out.pairs, "{}", alg.name());
        assert_eq!(out.checksum, clean_out.checksum, "{}", alg.name());
        assert!(report.retried(), "{}: {report:?}", alg.name());
        assert!(
            env.fault_stats().total() >= 1,
            "{}: {:?}",
            alg.name(),
            env.fault_stats()
        );
        assert_eq!(
            env.list_files(),
            reference_files,
            "{}: leaked or lost files",
            alg.name()
        );
    }
}
