//! Cross-environment equivalence: every algorithm must produce the
//! identical join (pair count and order-independent checksum) on the
//! execution-driven simulator and on the real memory-mapped store —
//! and both must match the workload generator's oracle.
//!
//! This is the reproduction's strongest correctness statement: the same
//! algorithm text, two radically different machines, one answer.

use std::sync::Arc;

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_env::{CollectingSink, FaultSpec, FaultyEnv, TraceEvent, TraceSink};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{SimConfig, SimEnv};

fn workload(d: u32, objects: u64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        rel: RelConfig {
            r_size: 64,
            s_size: 64,
            d,
            r_objects: objects,
            s_objects: objects,
        },
        dist: PointerDist::Uniform,
        seed,
        prefix: String::new(),
    }
}

fn sim_env(d: u32) -> SimEnv {
    let mut cfg = SimConfig::waterloo96(d);
    cfg.rproc_pages = 24;
    cfg.sproc_pages = 24;
    SimEnv::new(cfg).unwrap()
}

fn mmap_env(d: u32, tag: &str) -> (MmapEnv, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("mmjoin-xenv-{}-{tag}-{d}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let env = MmapEnv::new(MmapEnvConfig {
        root: root.clone(),
        num_disks: d,
        page_size: 4096,
    })
    .unwrap();
    (env, root)
}

#[test]
fn identical_results_on_sim_and_mmap() {
    let w = workload(4, 4_000, 31);
    for alg in Algo::ALL {
        // Simulator, deterministic sequential execution.
        let sim = sim_env(4);
        let sim_rels = build(&sim, &w).unwrap();
        let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Sequential);
        let sim_out = join(&sim, &sim_rels, alg, &spec).unwrap();

        // Real mmap store, truly threaded Rprocs and Sproc threads.
        let (mm, root) = mmap_env(4, alg.name());
        let mm_rels = build(&mm, &w).unwrap();
        let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Threaded);
        let mm_out = join(&mm, &mm_rels, alg, &spec).unwrap();
        std::fs::remove_dir_all(&root).unwrap();

        // Same workload (same seed) ⇒ same oracle on both environments.
        assert_eq!(sim_rels.expected_checksum, mm_rels.expected_checksum);
        verify(&sim_out, &sim_rels).unwrap_or_else(|e| panic!("sim {}: {e}", alg.name()));
        verify(&mm_out, &mm_rels).unwrap_or_else(|e| panic!("mmap {}: {e}", alg.name()));
        assert_eq!(sim_out.pairs, mm_out.pairs, "{}", alg.name());
        assert_eq!(sim_out.checksum, mm_out.checksum, "{}", alg.name());
    }
}

#[test]
fn mmap_event_counters_match_sim_protocol_counters() {
    // The declared protocol events (S batches, objects fetched, context
    // switches) are environment-independent facts about the algorithm;
    // both environments must count the same totals.
    let w = workload(2, 2_000, 77);
    for alg in [Algo::NestedLoops, Algo::Grace] {
        let sim = sim_env(2);
        let sim_rels = build(&sim, &w).unwrap();
        let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Sequential);
        let sim_out = join(&sim, &sim_rels, alg, &spec).unwrap();

        let (mm, root) = mmap_env(2, &format!("cnt-{}", alg.name()));
        let mm_rels = build(&mm, &w).unwrap();
        let mm_out = join(&mm, &mm_rels, alg, &spec).unwrap();
        std::fs::remove_dir_all(&root).unwrap();

        let sum = |st: &mmjoin_env::EnvStats, f: fn(&mmjoin_env::ProcStats) -> u64| -> u64 {
            st.procs.iter().map(f).sum()
        };
        assert_eq!(
            sum(&sim_out.stats, |p| p.s_objects),
            sum(&mm_out.stats, |p| p.s_objects),
            "{}",
            alg.name()
        );
        assert_eq!(
            sum(&sim_out.stats, |p| p.s_batches),
            sum(&mm_out.stats, |p| p.s_batches),
            "{}",
            alg.name()
        );
        assert_eq!(
            sum(&sim_out.stats, |p| p.ctx_switches),
            sum(&mm_out.stats, |p| p.ctx_switches),
            "{}",
            alg.name()
        );
    }
}

#[test]
fn trace_event_sequences_match_across_environments() {
    // Events carry no timestamps (the sink record does), so the event
    // *sequence* of a deterministic sequential join is an
    // environment-independent fact: the simulator and the real mmap
    // store must narrate the identical story, payload for payload.
    let w = workload(2, 2_000, 13);
    for alg in [Algo::NestedLoops, Algo::Grace] {
        let sim = sim_env(2);
        let sim_rels = build(&sim, &w).unwrap();
        let sim_sink = CollectingSink::new();
        sim.set_trace_sink(sim_sink.clone() as Arc<dyn TraceSink>);
        let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Sequential);
        join(&sim, &sim_rels, alg, &spec).unwrap();

        let (mm, root) = mmap_env(2, &format!("trace-{}", alg.name()));
        let mm_rels = build(&mm, &w).unwrap();
        let mm_sink = CollectingSink::new();
        mm.set_trace_sink(mm_sink.clone() as Arc<dyn TraceSink>);
        join(&mm, &mm_rels, alg, &spec).unwrap();
        std::fs::remove_dir_all(&root).unwrap();

        let sim_events = sim_sink.events();
        let mm_events = mm_sink.events();
        assert!(!sim_events.is_empty(), "{}", alg.name());
        assert_eq!(
            sim_events.len(),
            mm_events.len(),
            "{}: event counts differ",
            alg.name()
        );
        for (i, (a, b)) in sim_events.iter().zip(&mm_events).enumerate() {
            assert_eq!(a, b, "{}: event {i} differs", alg.name());
        }
    }
}

#[test]
fn empty_fault_spec_adds_zero_trace_events() {
    // FaultyEnv with an empty spec must be a pure passthrough at the
    // trace level too: the exact same event sequence as the bare
    // environment, and in particular no FaultInjected events.
    let w = workload(2, 2_000, 13);
    let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Sequential);

    let bare = sim_env(2);
    let bare_rels = build(&bare, &w).unwrap();
    let bare_sink = CollectingSink::new();
    bare.set_trace_sink(bare_sink.clone() as Arc<dyn TraceSink>);
    join(&bare, &bare_rels, Algo::Grace, &spec).unwrap();

    let inner = sim_env(2);
    let rels = build(&inner, &w).unwrap();
    let sink = CollectingSink::new();
    inner.set_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    let faulty = FaultyEnv::new(inner, FaultSpec::none());
    join(&faulty, &rels, Algo::Grace, &spec).unwrap();

    let events = sink.events();
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, TraceEvent::FaultInjected { .. })),
        "empty spec must inject nothing"
    );
    assert_eq!(
        bare_sink.events(),
        events,
        "fault wrapper with empty spec must add zero events"
    );
}

#[test]
fn skewed_pointers_agree_across_environments() {
    let mut w = workload(2, 2_000, 5);
    w.dist = PointerDist::Zipf { theta: 0.9 };
    for alg in [Algo::SortMerge, Algo::Grace] {
        let sim = sim_env(2);
        let sim_rels = build(&sim, &w).unwrap();
        let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Sequential);
        let sim_out = join(&sim, &sim_rels, alg, &spec).unwrap();
        verify(&sim_out, &sim_rels).unwrap();

        let (mm, root) = mmap_env(2, &format!("zipf-{}", alg.name()));
        let mm_rels = build(&mm, &w).unwrap();
        let mm_out = join(&mm, &mm_rels, alg, &spec).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        verify(&mm_out, &mm_rels).unwrap();
        assert_eq!(sim_out.checksum, mm_out.checksum);
    }
}
