//! The `Env` trait contract, checked generically against **both**
//! implementations. Anything the join algorithms rely on must behave
//! identically on the simulator and on the real memory-mapped store:
//! file lifecycle semantics, bounds checking, preload/reset behaviour,
//! the Sproc fetch protocol, and the event counters.

use mmjoin_env::{DiskId, Env, EnvError, FileOps, ProcId, SCatalog, SPtr};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_vmsim::{SimConfig, SimEnv};

const P: ProcId = ProcId(0);

/// The shared battery. `name_tag` keeps mmap roots distinct.
fn contract<E: Env>(env: &E) {
    // --- create / open / duplicate / delete ---
    let f = env.create_file(P, "alpha", DiskId(0), 10_000).unwrap();
    assert_eq!(f.len(), 10_000);
    assert!(!f.is_empty());
    assert!(matches!(
        env.create_file(P, "alpha", DiskId(0), 1),
        Err(EnvError::AlreadyExists(_))
    ));
    let f2 = env.open_file(P, "alpha").unwrap();
    assert_eq!(f2.len(), 10_000);
    assert!(matches!(
        env.open_file(P, "missing"),
        Err(EnvError::NotFound(_))
    ));

    // --- read/write round trip, including page-straddling ranges ---
    let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
    f.write_at(P, 3_000, &data).unwrap();
    let mut back = vec![0u8; 5000];
    f2.read_at(P, 3_000, &mut back).unwrap();
    assert_eq!(back, data);

    // --- bounds ---
    let mut buf = [0u8; 16];
    assert!(matches!(
        f.read_at(P, 9_990, &mut buf),
        Err(EnvError::OutOfBounds { .. })
    ));
    assert!(f.write_at(P, u64::MAX - 4, &buf).is_err());
    // Zero-length access at the end boundary is fine.
    f.read_at(P, 10_000, &mut []).unwrap();

    // --- preload is visible through normal reads ---
    env.create_file(P, "beta", DiskId(0), 4096).unwrap();
    env.preload("beta", 100, b"preloaded").unwrap();
    let b = env.open_file(P, "beta").unwrap();
    let mut nine = [0u8; 9];
    b.read_at(P, 100, &mut nine).unwrap();
    assert_eq!(&nine, b"preloaded");

    // --- delete invalidates by name ---
    env.delete_file(P, "beta").unwrap();
    assert!(matches!(
        env.open_file(P, "beta"),
        Err(EnvError::NotFound(_))
    ));
    assert!(matches!(
        env.delete_file(P, "beta"),
        Err(EnvError::NotFound(_))
    ));

    // --- S service protocol ---
    let d = env.num_disks();
    let part_bytes = 4096u64;
    let mut names = Vec::new();
    for j in 0..d {
        let n = format!("S_{j}");
        env.create_file(P, &n, DiskId(j), part_bytes).unwrap();
        let mut payload = vec![0u8; part_bytes as usize];
        for (i, c) in payload.chunks_mut(64).enumerate() {
            c[0] = j as u8;
            c[1] = i as u8;
        }
        env.preload(&n, 0, &payload).unwrap();
        names.push(n);
    }
    // Fetch before registration fails.
    let mut out = Vec::new();
    assert!(env
        .s_fetch_batch(P, 0, &[SPtr::new(0, 0, part_bytes)], 8, &mut out)
        .is_err());
    env.register_s(SCatalog {
        part_files: names,
        part_bytes,
        s_obj_size: 64,
    })
    .unwrap();
    let ptrs = [
        SPtr::new(d - 1, 2 * 64, part_bytes),
        SPtr::new(d - 1, 0, part_bytes),
    ];
    env.s_fetch_batch(P, d - 1, &ptrs, 72, &mut out).unwrap();
    assert_eq!(out.len(), 128);
    assert_eq!((out[0], out[1]), ((d - 1) as u8, 2));
    assert_eq!((out[64], out[65]), ((d - 1) as u8, 0));
    // Wrong-partition pointers are rejected.
    assert!(env
        .s_fetch_batch(P, 0, &[SPtr::new(d - 1, 0, part_bytes)], 8, &mut out)
        .is_err());
    // Empty batch is a no-op.
    let before = env.stats().procs[0].s_batches;
    env.s_fetch_batch(P, 0, &[], 8, &mut out).unwrap();
    assert_eq!(env.stats().procs[0].s_batches, before);

    // --- counters and reset ---
    env.cpu(P, mmjoin_env::CpuOp::Map, 5);
    env.move_bytes(P, mmjoin_env::MoveKind::PP, 100);
    env.context_switches(P, 3);
    let st = env.stats();
    assert_eq!(st.procs[0].cpu_ops[mmjoin_env::CpuOp::Map.index()], 5);
    assert_eq!(
        st.procs[0].move_bytes[mmjoin_env::MoveKind::PP.index()],
        100
    );
    assert!(st.procs[0].ctx_switches >= 3);
    assert_eq!(st.procs.len(), ProcId::slots(d));
    env.reset_stats();
    let st = env.stats();
    assert_eq!(st.procs[0].ctx_switches, 0);
    assert_eq!(st.procs[0].cpu_ops[mmjoin_env::CpuOp::Map.index()], 0);

    env.shutdown_s();
}

#[test]
fn sim_env_honors_the_contract() {
    let mut cfg = SimConfig::waterloo96(2);
    cfg.rproc_pages = 16;
    cfg.sproc_pages = 16;
    let env = SimEnv::new(cfg).unwrap();
    contract(&env);
}

#[test]
fn mmap_env_honors_the_contract() {
    let root = std::env::temp_dir().join(format!("mmjoin-contract-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let env = MmapEnv::new(MmapEnvConfig {
        root: root.clone(),
        num_disks: 2,
        page_size: 4096,
    })
    .unwrap();
    contract(&env);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn sim_clock_is_monotone_and_reset_zeroes_it() {
    let env = SimEnv::new(SimConfig::waterloo96(1)).unwrap();
    assert_eq!(env.now(P), 0.0);
    env.create_file(P, "t", DiskId(0), 4096).unwrap();
    let after_create = env.now(P);
    assert!(after_create > 0.0, "newMap charges time");
    env.cpu(P, mmjoin_env::CpuOp::Hash, 1000);
    assert!(env.now(P) > after_create);
    env.reset_stats();
    assert_eq!(env.now(P), 0.0);
}

#[test]
fn invalid_configs_are_rejected_by_both() {
    assert!(SimEnv::new(SimConfig::waterloo96(0)).is_err());
    assert!(MmapEnv::new(MmapEnvConfig {
        root: std::env::temp_dir().join("mmjoin-zero"),
        num_disks: 0,
        page_size: 4096,
    })
    .is_err());
    let env = SimEnv::new(SimConfig::waterloo96(1)).unwrap();
    assert!(env.create_file(P, "x", DiskId(9), 1).is_err(), "bad disk");
}
