//! Differential testing of the `--modern` execution mode: for any
//! workload shape, seed, and pointer distribution, the cache-conscious
//! kernels must produce the *identical* join — same pair count, same
//! order-independent checksum — as the faithful 1996 inner loops, on
//! both environments, for every algorithm. The faithful result itself
//! is verified against the workload oracle, so agreement here means
//! both are exactly right, not merely consistent.

use std::sync::Arc;

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_env::{CollectingSink, Env, TraceEvent, TraceSink};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{SimConfig, SimEnv};
use proptest::prelude::*;

const PAGE: u64 = 4096;

fn workload(objects_per_disk: u64, d: u32, seed: u64, dist: PointerDist) -> WorkloadSpec {
    WorkloadSpec {
        rel: RelConfig {
            r_size: 32,
            s_size: 32,
            d,
            r_objects: objects_per_disk * d as u64,
            s_objects: objects_per_disk * d as u64,
        },
        dist,
        seed,
        prefix: String::new(),
    }
}

fn sim(d: u32, pages: usize) -> SimEnv {
    let mut cfg = SimConfig::waterloo96(d);
    cfg.rproc_pages = pages;
    cfg.sproc_pages = pages;
    SimEnv::new(cfg).expect("valid test config")
}

fn mmap_env(d: u32, tag: &str) -> (MmapEnv, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("mmjoin-modern-{}-{tag}-{d}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let env = MmapEnv::new(MmapEnvConfig {
        root: root.clone(),
        num_disks: d,
        page_size: 4096,
    })
    .expect("mmap env");
    (env, root)
}

/// Build the workload on `env`, join with `mode`, verify against the
/// oracle, and return `(pairs, checksum)`.
fn run_mode<E: Env>(
    env: &E,
    w: &WorkloadSpec,
    alg: Algo,
    pages: u64,
    mode: ExecMode,
) -> (u64, u64) {
    let rels = build(env, w).expect("workload builds");
    let spec = JoinSpec::new(pages * PAGE, pages * PAGE).with_mode(mode);
    let out =
        join(env, &rels, alg, &spec).unwrap_or_else(|e| panic!("{} {mode:?}: {e}", alg.name()));
    verify(&out, &rels).unwrap_or_else(|e| panic!("{} {mode:?} vs oracle: {e}", alg.name()));
    (out.pairs, out.checksum)
}

const DIFF_ALGOS: [Algo; 4] = [
    Algo::NestedLoops,
    Algo::SortMerge,
    Algo::Grace,
    Algo::HybridHash,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The differential property: over random sizes, seeds, memory
    /// budgets, and skewed + uniform pointer distributions, modern mode
    /// equals faithful mode for every algorithm on the simulator.
    #[test]
    fn modern_equals_faithful_on_sim(
        objects in 50u64..400,
        d in 1u32..=4,
        seed in 0u64..5_000,
        pages in 6u64..=16,
        dist_idx in 0usize..4,
    ) {
        let dist = match dist_idx {
            0 => PointerDist::Uniform,
            1 => PointerDist::Zipf { theta: 0.6 },
            2 => PointerDist::Zipf { theta: 1.1 },
            _ => PointerDist::CrossPartition,
        };
        let w = workload(objects, d, seed, dist);
        for alg in DIFF_ALGOS {
            let faithful = run_mode(&sim(d, pages as usize), &w, alg, pages, ExecMode::Sequential);
            let modern = run_mode(&sim(d, pages as usize), &w, alg, pages, ExecMode::Modern);
            prop_assert_eq!(faithful.0, modern.0, "pairs ({})", alg.name());
            prop_assert_eq!(faithful.1, modern.1, "checksum ({})", alg.name());
        }
    }
}

/// The same differential statement on the real memory-mapped store,
/// faithful threaded vs modern, uniform pointers.
#[test]
fn modern_equals_faithful_on_mmap() {
    let w = workload(1_000, 4, 31, PointerDist::Uniform);
    for alg in Algo::ALL {
        let (fe, froot) = mmap_env(4, &format!("f-{}", alg.name()));
        let faithful = run_mode(&fe, &w, alg, 24, ExecMode::Threaded);
        std::fs::remove_dir_all(&froot).expect("cleanup");

        let (me, mroot) = mmap_env(4, &format!("m-{}", alg.name()));
        let modern = run_mode(&me, &w, alg, 24, ExecMode::Modern);
        std::fs::remove_dir_all(&mroot).expect("cleanup");

        assert_eq!(faithful, modern, "{}", alg.name());
    }
}

/// Cross-partition skew (every pointer leaves its home partition) on
/// the mmap store: the radix scatter and run exchange carry the whole
/// relation, and the answer must not change.
#[test]
fn modern_survives_cross_partition_skew_on_mmap() {
    let w = workload(500, 4, 7, PointerDist::CrossPartition);
    for alg in DIFF_ALGOS {
        let (fe, froot) = mmap_env(4, &format!("xf-{}", alg.name()));
        let faithful = run_mode(&fe, &w, alg, 24, ExecMode::Threaded);
        std::fs::remove_dir_all(&froot).expect("cleanup");

        let (me, mroot) = mmap_env(4, &format!("xm-{}", alg.name()));
        let modern = run_mode(&me, &w, alg, 24, ExecMode::Modern);
        std::fs::remove_dir_all(&mroot).expect("cleanup");

        assert_eq!(faithful, modern, "{}", alg.name());
    }
}

/// Zipf-skewed pointers agree too (hot S-objects probed many times in
/// one batch).
#[test]
fn modern_survives_zipf_skew_on_sim() {
    let w = workload(800, 2, 19, PointerDist::Zipf { theta: 1.2 });
    for alg in DIFF_ALGOS {
        let faithful = run_mode(&sim(2, 16), &w, alg, 16, ExecMode::Sequential);
        let modern = run_mode(&sim(2, 16), &w, alg, 16, ExecMode::Modern);
        assert_eq!(faithful, modern, "{}", alg.name());
    }
}

/// Modern traces keep the paper's schedule invariants: every
/// `PassStart` has a matching `PassEnd`, and within each `(pass,
/// phase)` label every disk is owned by exactly one proc. The kernel
/// events must show up too.
#[test]
fn modern_trace_keeps_schedule_invariants() {
    let d = 4u32;
    for alg in DIFF_ALGOS {
        let env = sim(d, 16);
        let sink = CollectingSink::new();
        env.set_trace_sink(sink.clone() as Arc<dyn TraceSink>);
        let w = workload(200, d, 3, PointerDist::Uniform);
        run_mode(&env, &w, alg, 16, ExecMode::Modern);

        let events = sink.events();
        let mut starts: Vec<(u32, u32, u32, u32, String)> = Vec::new();
        let mut ends: Vec<(u32, u32, u32, u32, String)> = Vec::new();
        let mut radix = 0u32;
        let mut merges = 0u32;
        let mut probes = 0u32;
        for e in &events {
            match e {
                TraceEvent::PassStart {
                    proc,
                    pass,
                    phase,
                    disk,
                    area,
                } => starts.push((*proc, *pass, *phase, *disk, area.clone())),
                TraceEvent::PassEnd {
                    proc,
                    pass,
                    phase,
                    disk,
                    area,
                    ..
                } => ends.push((*proc, *pass, *phase, *disk, area.clone())),
                TraceEvent::KernelRadix { .. } => radix += 1,
                TraceEvent::KernelMerge { .. } => merges += 1,
                TraceEvent::KernelProbe { .. } => probes += 1,
                _ => {}
            }
        }
        let mut s = starts.clone();
        let mut e = ends.clone();
        s.sort();
        e.sort();
        assert_eq!(s, e, "{}: unbalanced pass events", alg.name());

        // Per (pass, phase) label: the disks must be exactly 0..d, each
        // owned by exactly one proc.
        let mut groups: std::collections::BTreeMap<(u32, u32), Vec<u32>> =
            std::collections::BTreeMap::new();
        for (_, pass, phase, disk, _) in &starts {
            groups.entry((*pass, *phase)).or_default().push(*disk);
        }
        for ((pass, phase), mut disks) in groups {
            disks.sort_unstable();
            assert_eq!(
                disks,
                (0..d).collect::<Vec<_>>(),
                "{}: pass {pass} phase {phase} does not own each disk exactly once",
                alg.name()
            );
        }

        assert!(
            radix >= d,
            "{}: expected a radix kernel per proc",
            alg.name()
        );
        assert!(probes >= d, "{}: expected probe kernels", alg.name());
        if alg == Algo::SortMerge {
            assert_eq!(merges, d, "sort-merge runs one merge-scan per owner");
        }
    }
}

/// Two tagged modern runs on one shared environment are bitwise
/// deterministic (and the second cannot be poisoned by the first —
/// arenas and shared slots are per-run).
#[test]
fn modern_repeat_runs_are_deterministic() {
    let env = sim(2, 16);
    let w = workload(400, 2, 41, PointerDist::Zipf { theta: 0.8 });
    let rels = build(&env, &w).expect("workload builds");
    let mut outs = Vec::new();
    for t in 0..2 {
        let spec = JoinSpec::new(16 * PAGE, 16 * PAGE)
            .with_mode(ExecMode::Modern)
            .with_tag(&format!("rep{t}"));
        let out = join(&env, &rels, Algo::SortMerge, &spec).expect("join runs");
        verify(&out, &rels).expect("matches oracle");
        outs.push((out.pairs, out.checksum));
    }
    assert_eq!(outs[0], outs[1]);
}
