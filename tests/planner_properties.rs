//! Property tests for the planner: over randomized join shapes, the
//! ranking must be a complete, ascending ordering of the modelled
//! algorithms, with the winner's time exposed as `predicted_seconds()`.

use mmjoin::choose;
use mmjoin_env::machine::MachineParams;
use mmjoin_model::{Algorithm, JoinInputs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ranking_is_sorted_complete_and_consistent(
        r_objects in 1_000u64..60_000,
        s_objects in 1_000u64..60_000,
        r_size in 16u32..256,
        s_size in 16u32..256,
        d in 1u32..8,
        skew_tenths in 10u32..60,
        rproc_pages in 4u64..512,
        sproc_pages in 4u64..512,
    ) {
        let inputs = JoinInputs {
            r_objects,
            s_objects,
            r_size,
            s_size,
            sptr_size: 8,
            d,
            skew: f64::from(skew_tenths) / 10.0,
            m_rproc: rproc_pages * 4096,
            m_sproc: sproc_pages * 4096,
            g_buffer: 4096,
        };
        let plan = choose(&MachineParams::waterloo96(), &inputs);

        // Complete: every modelled algorithm appears exactly once.
        prop_assert_eq!(plan.ranking.len(), Algorithm::ALL.len());
        for alg in Algorithm::ALL {
            prop_assert_eq!(
                plan.ranking.iter().filter(|(a, _)| *a == alg).count(),
                1,
                "{} must appear once",
                alg.name()
            );
        }

        // Sorted ascending by predicted time, all predictions usable.
        for pair in plan.ranking.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1, "ranking must ascend");
        }
        for (alg, t) in &plan.ranking {
            prop_assert!(t.is_finite() && *t > 0.0, "{} predicted {t}", alg.name());
        }

        // The advertised winner is the head of the ranking.
        prop_assert_eq!(plan.algorithm, plan.ranking[0].0);
        prop_assert_eq!(plan.predicted_seconds(), plan.ranking[0].1);
    }
}
