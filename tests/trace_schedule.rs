//! Golden-schedule trace tests: the paper's central §5 claim is that
//! pass 1's staggered phases `offset(i,t)` keep every disk owned by
//! exactly one process per phase. Counters cannot show a schedule, so
//! these tests run every partition-based algorithm with a
//! [`CollectingSink`] attached and assert the claim directly on the
//! emitted event stream:
//!
//! * pass-1 phase `t`: the D `PassStart` events name D distinct
//!   processes and D distinct disks, and each process `i` touches
//!   exactly disk `phase_partner(i, t, d) = (i + t) % d`;
//! * pass boundaries nest per process — a `PassEnd` always matches the
//!   most recent open `PassStart`, and no pass-2 event appears before
//!   the process has ended its last pass-1 phase.

use std::collections::BTreeMap;
use std::sync::Arc;

use mmjoin::exec::phase_partner;
use mmjoin::{join, Algo, ExecMode, JoinSpec};
use mmjoin_env::{CollectingSink, TraceEvent, TraceSink};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{SimConfig, SimEnv};

/// The algorithms that follow the paper's three-pass structure (the
/// naive baseline deliberately has no schedule to validate).
const STAGED: [Algo; 4] = [
    Algo::NestedLoops,
    Algo::SortMerge,
    Algo::Grace,
    Algo::HybridHash,
];

fn workload(d: u32, objects: u64) -> WorkloadSpec {
    WorkloadSpec {
        rel: RelConfig {
            r_size: 64,
            s_size: 64,
            d,
            r_objects: objects,
            s_objects: objects,
        },
        dist: PointerDist::Uniform,
        seed: 1996,
        prefix: String::new(),
    }
}

/// Run `alg` on a fresh simulator with a collecting sink attached
/// *after* the relations are built, so the trace covers the join only.
fn traced_events(alg: Algo, d: u32, objects: u64) -> Vec<TraceEvent> {
    let mut cfg = SimConfig::waterloo96(d);
    cfg.rproc_pages = 24;
    cfg.sproc_pages = 24;
    let env = SimEnv::new(cfg).unwrap();
    let rels = build(&env, &workload(d, objects)).unwrap();
    let sink = CollectingSink::new();
    env.set_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Sequential);
    join(&env, &rels, alg, &spec).unwrap();
    sink.events()
}

/// The subset of events that are pass boundaries, as
/// `(is_start, proc, pass, phase, disk)` tuples in emission order.
fn pass_boundaries(events: &[TraceEvent]) -> Vec<(bool, u32, u32, u32, u32)> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PassStart {
                proc,
                pass,
                phase,
                disk,
                ..
            } => Some((true, *proc, *pass, *phase, *disk)),
            TraceEvent::PassEnd {
                proc,
                pass,
                phase,
                disk,
                ..
            } => Some((false, *proc, *pass, *phase, *disk)),
            _ => None,
        })
        .collect()
}

#[test]
fn pass1_phases_touch_every_disk_exactly_once() {
    let d = 4u32;
    for alg in STAGED {
        let events = traced_events(alg, d, 4 * 1024);
        // Group pass-1 starts by phase t.
        let mut by_phase: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        for e in &events {
            if let TraceEvent::PassStart {
                proc,
                pass: 1,
                phase,
                disk,
                ..
            } = e
            {
                by_phase.entry(*phase).or_default().push((*proc, *disk));
            }
        }
        let phases: Vec<u32> = by_phase.keys().copied().collect();
        assert_eq!(
            phases,
            (1..d).collect::<Vec<u32>>(),
            "{}: pass 1 must run phases 1..D",
            alg.name()
        );
        for (t, pairs) in &by_phase {
            let mut procs: Vec<u32> = pairs.iter().map(|(p, _)| *p).collect();
            let mut disks: Vec<u32> = pairs.iter().map(|(_, k)| *k).collect();
            procs.sort_unstable();
            disks.sort_unstable();
            let all: Vec<u32> = (0..d).collect();
            assert_eq!(procs, all, "{} phase {t}: every proc once", alg.name());
            assert_eq!(disks, all, "{} phase {t}: every disk once", alg.name());
            for (proc, disk) in pairs {
                assert_eq!(
                    *disk,
                    phase_partner(*proc, *t, d),
                    "{} phase {t}: proc {proc} must read disk offset(i,t)",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn pass0_scans_the_local_partition() {
    let d = 4u32;
    let objects = 4 * 1024u64;
    for alg in STAGED {
        let events = traced_events(alg, d, objects);
        let mut seen = vec![0u32; d as usize];
        let mut scanned = 0u64;
        for e in &events {
            if let TraceEvent::PassStart {
                proc,
                pass: 0,
                phase,
                disk,
                area,
            } = e
            {
                assert_eq!(*phase, 0, "{}", alg.name());
                assert_eq!(*disk, *proc, "{}: pass 0 reads the local disk", alg.name());
                assert_eq!(*area, format!("R_{proc}"), "{}", alg.name());
                seen[*proc as usize] += 1;
            }
            if let TraceEvent::PassEnd {
                pass: 0, objects, ..
            } = e
            {
                scanned += objects;
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "{}: each proc scans its partition exactly once (got {seen:?})",
            alg.name()
        );
        assert_eq!(
            scanned,
            objects,
            "{}: pass 0 scans all of R exactly once",
            alg.name()
        );
    }
}

#[test]
fn pass_boundaries_nest_and_balance() {
    let d = 3u32;
    for alg in STAGED {
        let events = traced_events(alg, d, 3 * 1024);
        let bounds = pass_boundaries(&events);
        assert!(!bounds.is_empty(), "{}", alg.name());
        // Per-proc stack discipline: an end always matches the most
        // recent open start for that proc.
        let mut open: BTreeMap<u32, Vec<(u32, u32, u32)>> = BTreeMap::new();
        // Per-proc progress: pass ids never move backwards, so no
        // pass-2 start can precede the final pass-1 end.
        let mut hwm: BTreeMap<u32, u32> = BTreeMap::new();
        for (is_start, proc, pass, phase, disk) in bounds {
            if is_start {
                let prev = hwm.entry(proc).or_insert(0);
                assert!(
                    pass >= *prev,
                    "{}: proc {proc} started pass {pass} after pass {prev}",
                    alg.name()
                );
                *prev = pass;
                open.entry(proc).or_default().push((pass, phase, disk));
            } else {
                let top = open
                    .get_mut(&proc)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| {
                        panic!("{}: proc {proc} ended a pass it never started", alg.name())
                    });
                assert_eq!(
                    top,
                    (pass, phase, disk),
                    "{}: proc {proc} pass end does not match its open start",
                    alg.name()
                );
            }
        }
        for (proc, stack) in &open {
            assert!(
                stack.is_empty(),
                "{}: proc {proc} left passes open: {stack:?}",
                alg.name()
            );
        }
    }
}

#[test]
fn sequential_and_threaded_traces_have_equal_event_sets() {
    // Threaded execution interleaves emissions across procs, but each
    // proc must still produce the same multiset of pass boundaries.
    let d = 2u32;
    for alg in [Algo::Grace, Algo::NestedLoops] {
        let seq = traced_events(alg, d, 2 * 1024);

        let mut cfg = SimConfig::waterloo96(d);
        cfg.rproc_pages = 24;
        cfg.sproc_pages = 24;
        let env = SimEnv::new(cfg).unwrap();
        let rels = build(&env, &workload(d, 2 * 1024)).unwrap();
        let sink = CollectingSink::new();
        env.set_trace_sink(sink.clone() as Arc<dyn TraceSink>);
        let spec = JoinSpec::new(24 * 4096, 24 * 4096).with_mode(ExecMode::Threaded);
        join(&env, &rels, alg, &spec).unwrap();
        let thr = sink.events();

        let mut a = pass_boundaries(&seq);
        let mut b = pass_boundaries(&thr);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{}", alg.name());
    }
}
