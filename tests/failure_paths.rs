//! Failure injection: joins must fail *cleanly* — an error, not a
//! panic, wrong answer, or deadlock — when the environment runs out of
//! resources or the setup is inconsistent, in both execution modes.

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_env::{Env, EnvError, SCatalog};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_vmsim::{DiskParams, SimConfig, SimEnv};

fn workload(d: u32, objects: u64) -> WorkloadSpec {
    WorkloadSpec {
        rel: RelConfig {
            r_size: 64,
            s_size: 64,
            d,
            r_objects: objects,
            s_objects: objects,
        },
        dist: PointerDist::Uniform,
        seed: 2,
        prefix: String::new(),
    }
}

/// A simulated machine whose disks are too small for the join's
/// temporary areas.
fn tiny_disk_env(d: u32, capacity_blocks: u64) -> SimEnv {
    let mut cfg = SimConfig::waterloo96(d);
    cfg.rproc_pages = 16;
    cfg.sproc_pages = 16;
    // Shrink the drive: small cylinders give fine-grained capacity
    // control (capacity = blocks_per_cyl × cylinders).
    let mut disk = DiskParams::waterloo96();
    disk.blocks_per_track = 4;
    disk.tracks_per_cyl = 2;
    disk.cylinders = capacity_blocks.div_ceil(disk.blocks_per_cyl()).max(1);
    cfg.disk = disk;
    SimEnv::new(cfg).unwrap()
}

#[test]
fn disk_full_fails_cleanly_in_sequential_mode() {
    // R and S fit, but the temporary areas don't.
    let w = workload(2, 4_000);
    // R_i + S_i = 64 blocks per disk; the RP/RS/Merge areas need ~100
    // more. 96 blocks: relations load, temporaries overflow.
    let env = tiny_disk_env(2, 96);
    let rels = build(&env, &w).expect("relations themselves fit");
    for alg in [Algo::SortMerge, Algo::Grace] {
        let spec = JoinSpec::new(16 * 4096, 16 * 4096)
            .with_mode(ExecMode::Sequential)
            .with_tag(alg.name());
        match join(&env, &rels, alg, &spec) {
            Err(EnvError::DiskFull(_)) => {}
            Err(other) => panic!("{}: expected DiskFull, got {other}", alg.name()),
            Ok(_) => panic!("{}: join cannot fit on this disk", alg.name()),
        }
    }
}

#[test]
fn disk_full_fails_cleanly_in_threaded_mode_without_deadlock() {
    // The staged driver must keep meeting barriers after one worker
    // errors, then surface the error.
    let w = workload(4, 4_000);
    let env = tiny_disk_env(4, 48);
    let rels = build(&env, &w).expect("relations fit");
    let spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Threaded);
    let result = join(&env, &rels, Algo::SortMerge, &spec);
    assert!(
        matches!(result, Err(EnvError::DiskFull(_))),
        "expected DiskFull, got {result:?}"
    );
}

#[test]
fn mismatched_catalog_is_rejected() {
    let env = SimEnv::new(SimConfig::waterloo96(2)).unwrap();
    // Catalog claims 3 partitions on a 2-disk machine.
    let err = env.register_s(SCatalog {
        part_files: vec!["a".into(), "b".into(), "c".into()],
        part_bytes: 4096,
        s_obj_size: 64,
    });
    assert!(matches!(err, Err(EnvError::BadSRequest(_))));
}

#[test]
fn join_after_failure_recovers_on_a_fresh_environment() {
    // A failed run must not poison anything global: the same workload
    // joins fine on an adequately-sized machine afterwards.
    let w = workload(2, 4_000);
    {
        let env = tiny_disk_env(2, 96);
        let rels = build(&env, &w).unwrap();
        let spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Sequential);
        assert!(join(&env, &rels, Algo::Grace, &spec).is_err());
    }
    let mut cfg = SimConfig::waterloo96(2);
    cfg.rproc_pages = 16;
    cfg.sproc_pages = 16;
    let env = SimEnv::new(cfg).unwrap();
    let rels = build(&env, &w).unwrap();
    let spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Sequential);
    let out = join(&env, &rels, Algo::Grace, &spec).unwrap();
    verify(&out, &rels).unwrap();
}

#[test]
fn rerun_with_same_tag_collides_cleanly() {
    // Temporary areas are named; running the same tagged join twice on
    // one environment must surface AlreadyExists, not corrupt data.
    let w = workload(2, 1_000);
    let mut cfg = SimConfig::waterloo96(2);
    cfg.rproc_pages = 16;
    cfg.sproc_pages = 16;
    let env = SimEnv::new(cfg).unwrap();
    let rels = build(&env, &w).unwrap();
    let spec = JoinSpec::new(16 * 4096, 16 * 4096)
        .with_mode(ExecMode::Sequential)
        .with_tag("dup");
    let out = join(&env, &rels, Algo::Grace, &spec).unwrap();
    verify(&out, &rels).unwrap();
    match join(&env, &rels, Algo::Grace, &spec) {
        Err(EnvError::AlreadyExists(_)) => {}
        other => panic!("expected AlreadyExists, got {other:?}"),
    }
}

#[test]
fn workload_validation_rejects_bad_shapes_before_io() {
    let env = SimEnv::new(SimConfig::waterloo96(3)).unwrap();
    // Object counts that do not divide across partitions.
    let mut w = workload(3, 1_000); // 1000 % 3 != 0
    w.rel.r_objects = 1_000;
    w.rel.s_objects = 999;
    assert!(build(&env, &w).is_err());
}
