//! Machine-profile persistence properties: serialization is a bitwise
//! identity, malformed and mis-versioned documents are rejected with
//! useful errors, and a profile that made a round trip through disk
//! drives the analytical model to *exactly* the same predictions as the
//! in-memory original — the property that makes persisted profiles a
//! safe substitute for in-process calibration.

use mmjoin_calibrate::{MachineProfile, Provenance, PROFILE_VERSION};
use mmjoin_env::machine::{DttCurve, MachineParams, MapCostModel};
use mmjoin_model::{predict, Algorithm, JoinInputs};
use proptest::prelude::*;

/// A strictly increasing, positive dtt curve from arbitrary raw floats.
fn curve_strategy() -> impl Strategy<Value = DttCurve> {
    proptest::collection::vec((1.0e-6f64..1.0, 1.0e-6f64..0.1), 1..8).prop_map(|steps| {
        let mut band = 0.0f64;
        let points = steps
            .into_iter()
            .map(|(dband, sec)| {
                band += 1.0 + dband * 1000.0;
                (band.floor(), sec)
            })
            .collect();
        DttCurve::from_points(points).expect("constructed increasing")
    })
}

fn machine_strategy() -> impl Strategy<Value = MachineParams> {
    (
        (
            0usize..4, // index into the page-size table below
            1.0e-7f64..1.0e-3,
            (
                1.0e-10f64..1.0e-6,
                1.0e-10f64..1.0e-6,
                1.0e-10f64..1.0e-6,
                1.0e-10f64..1.0e-6,
            ),
        ),
        (
            1.0e-9f64..1.0e-4,
            1.0e-9f64..1.0e-4,
            1.0e-9f64..1.0e-4,
            1.0e-9f64..1.0e-4,
            1.0e-9f64..1.0e-4,
            1.0e-9f64..1.0e-2,
        ),
        curve_strategy(),
        curve_strategy(),
        (
            0.0f64..0.5,
            0.0f64..1.0e-2,
            0.0f64..0.5,
            0.0f64..1.0e-2,
            0.0f64..0.5,
            0.0f64..1.0e-2,
        ),
    )
        .prop_map(|((page_idx, cs, mt), cpu, dttr, dttw, mc)| MachineParams {
            page_size: [512u64, 4096, 8192, 16384][page_idx],
            cs,
            mt: [mt.0, mt.1, mt.2, mt.3],
            cpu: [cpu.0, cpu.1, cpu.2, cpu.3, cpu.4, cpu.5],
            dttr,
            dttw,
            map_cost: MapCostModel {
                new_base: mc.0,
                new_per_block: mc.1,
                open_base: mc.2,
                open_per_block: mc.3,
                delete_base: mc.4,
                delete_per_block: mc.5,
            },
        })
}

fn profile_with(machine: MachineParams) -> MachineProfile {
    MachineProfile {
        version: PROFILE_VERSION,
        provenance: Provenance {
            host: "prop-host".into(),
            device: "/tmp/prop \"device\"".into(),
            created_unix: 1_754_000_000,
            direct_io: true,
            quick: false,
            reps: 5,
            warmup: 1,
            fit_residuals: [3.0e-4, 1.0e-5, 0.0],
        },
        machine,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MachineParams → JSON → MachineParams is the identity, bitwise:
    /// `MachineParams` equality is float-exact, so this pins down that
    /// the emitter's shortest-roundtrip float formatting loses nothing.
    #[test]
    fn profile_round_trip_is_identity(machine in machine_strategy()) {
        let profile = profile_with(machine);
        let text = profile.to_json();
        let back = MachineProfile::from_json(&text).expect("own output parses");
        prop_assert_eq!(back, profile);
    }

    /// A loaded profile drives the model to bit-identical predictions —
    /// every pass of every algorithm.
    #[test]
    fn loaded_profile_predicts_identically(machine in machine_strategy()) {
        let profile = profile_with(machine);
        let loaded = MachineProfile::from_json(&profile.to_json()).unwrap();
        let w = JoinInputs {
            r_objects: 102_400,
            s_objects: 102_400,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: 4 << 20,
            m_sproc: 4 << 20,
            g_buffer: profile.machine.page_size,
        };
        for alg in Algorithm::ALL {
            let original = predict(alg, &profile.machine, &w);
            let reloaded = predict(alg, &loaded.machine, &w);
            prop_assert_eq!(
                original.total().to_bits(),
                reloaded.total().to_bits(),
                "{} total diverged", alg.name()
            );
            for pass in original.passes() {
                prop_assert_eq!(
                    original.total_pass(pass).to_bits(),
                    reloaded.total_pass(pass).to_bits(),
                    "{} pass {} diverged", alg.name(), pass
                );
            }
        }
    }
}

#[test]
fn malformed_profiles_are_rejected() {
    let good = profile_with(MachineParams::waterloo96()).to_json();
    assert!(MachineProfile::from_json(&good).is_ok());

    // Structurally broken documents.
    for bad in [
        "",
        "{",
        "not json at all",
        "{\"format\": \"mmjoin-machine-profile\"}",
        "[]",
        "42",
    ] {
        assert!(MachineProfile::from_json(bad).is_err(), "accepted: {bad}");
    }

    // Well-formed JSON that is not a valid profile.
    let truncated = good.replace("\"cs\":", "\"not_cs\":");
    let err = MachineProfile::from_json(&truncated)
        .unwrap_err()
        .to_string();
    assert!(err.contains("cs"), "error should name the field: {err}");

    let wrong_type = good.replace("\"direct_io\": true", "\"direct_io\": \"yes\"");
    assert!(MachineProfile::from_json(&wrong_type).is_err());
}

#[test]
fn version_mismatch_is_rejected_with_guidance() {
    let good = profile_with(MachineParams::waterloo96()).to_json();
    let future = good.replace("\"version\": 1,", "\"version\": 2,");
    let err = MachineProfile::from_json(&future).unwrap_err().to_string();
    assert!(
        err.contains("version 2") && err.contains("calibrate"),
        "error should state the version and the remedy: {err}"
    );
    let not_a_profile = good.replace("mmjoin-machine-profile", "mmjoin-trace");
    let err = MachineProfile::from_json(&not_a_profile)
        .unwrap_err()
        .to_string();
    assert!(err.contains("not a machine profile"), "{err}");
}

#[test]
fn checked_in_ci_profile_loads_and_predicts() {
    // The sample profile under results/profiles must stay loadable; it
    // is what docs and smoke jobs point at.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/profiles/ci-host.json");
    let profile = MachineProfile::load(&path).expect("checked-in profile loads");
    assert_eq!(profile.version, PROFILE_VERSION);
    assert!(profile.provenance.quick);
    let w = JoinInputs {
        r_objects: 10_000,
        s_objects: 10_000,
        r_size: 128,
        s_size: 128,
        sptr_size: 8,
        d: 2,
        skew: 1.0,
        m_rproc: 1 << 20,
        m_sproc: 1 << 20,
        g_buffer: profile.machine.page_size,
    };
    for alg in Algorithm::PAPER {
        let cost = predict(alg, &profile.machine, &w);
        assert!(
            cost.total().is_finite() && cost.total() > 0.0,
            "{}: non-positive prediction from the CI profile",
            alg.name()
        );
    }
}
